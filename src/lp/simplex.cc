#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace treeagg {

namespace {
constexpr double kEps = 1e-9;
}

void LpProblem::AddRow(std::vector<double> row, double rhs_value) {
  assert(row.size() == objective.size());
  rows.push_back(std::move(row));
  rhs.push_back(rhs_value);
}

bool IsFeasible(const LpProblem& problem, const std::vector<double>& x,
                double tol) {
  if (x.size() != problem.num_vars()) return false;
  for (const double xi : x) {
    if (xi < -tol) return false;
  }
  for (std::size_t i = 0; i < problem.num_rows(); ++i) {
    double lhs = 0;
    for (std::size_t j = 0; j < problem.num_vars(); ++j) {
      lhs += problem.rows[i][j] * x[j];
    }
    if (lhs > problem.rhs[i] + tol) return false;
  }
  return true;
}

namespace {

// Dense tableau for the two-phase simplex. Columns: n structural, m slack,
// up to m artificial. Reduced costs are recomputed from scratch every
// iteration — O(m * cols), irrelevant at our sizes and immune to drift.
class Simplex {
 public:
  explicit Simplex(const LpProblem& p)
      : n_(p.num_vars()), m_(p.num_rows()) {
    cols_ = n_ + m_;  // artificials appended below
    table_.assign(m_, {});
    rhs_.assign(m_, 0);
    basis_.assign(m_, 0);
    std::vector<std::size_t> artificial_rows;
    for (std::size_t i = 0; i < m_; ++i) {
      table_[i].assign(cols_, 0.0);
      const double sign = (p.rhs[i] < 0) ? -1.0 : 1.0;
      for (std::size_t j = 0; j < n_; ++j) table_[i][j] = sign * p.rows[i][j];
      table_[i][n_ + i] = sign;  // slack
      rhs_[i] = sign * p.rhs[i];
      if (sign < 0) {
        artificial_rows.push_back(i);
      } else {
        basis_[i] = n_ + i;
      }
    }
    num_art_ = artificial_rows.size();
    for (auto& row : table_) row.resize(cols_ + num_art_, 0.0);
    for (std::size_t k = 0; k < num_art_; ++k) {
      const std::size_t i = artificial_rows[k];
      table_[i][cols_ + k] = 1.0;
      basis_[i] = cols_ + k;
    }
    total_cols_ = cols_ + num_art_;
  }

  LpSolution Solve(const LpProblem& p) {
    // Phase 1: minimize the sum of artificials.
    if (num_art_ > 0) {
      std::vector<double> d(total_cols_, 0.0);
      for (std::size_t j = cols_; j < total_cols_; ++j) d[j] = 1.0;
      if (!Optimize(d, /*ban_artificials=*/false)) {
        return {LpSolution::Status::kUnbounded, 0, {}};  // cannot happen
      }
      if (ObjectiveValue(d) > 1e-7) {
        return {LpSolution::Status::kInfeasible, 0, {}};
      }
      DriveOutArtificials();
    }
    // Phase 2: minimize the true objective, artificial columns banned.
    std::vector<double> d(total_cols_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) d[j] = p.objective[j];
    if (!Optimize(d, /*ban_artificials=*/true)) {
      return {LpSolution::Status::kUnbounded, 0, {}};
    }
    LpSolution sol;
    sol.status = LpSolution::Status::kOptimal;
    sol.x.assign(n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) sol.x[basis_[i]] = rhs_[i];
    }
    sol.value = 0;
    for (std::size_t j = 0; j < n_; ++j) sol.value += p.objective[j] * sol.x[j];
    return sol;
  }

 private:
  double ObjectiveValue(const std::vector<double>& d) const {
    double z = 0;
    for (std::size_t i = 0; i < m_; ++i) z += d[basis_[i]] * rhs_[i];
    return z;
  }

  // Reduced cost of column j under cost vector d.
  double ReducedCost(const std::vector<double>& d, std::size_t j) const {
    double r = d[j];
    for (std::size_t i = 0; i < m_; ++i) r -= d[basis_[i]] * table_[i][j];
    return r;
  }

  // Minimizes d . (full variable vector). Returns false on unboundedness.
  bool Optimize(const std::vector<double>& d, bool ban_artificials) {
    const std::size_t limit = ban_artificials ? cols_ : total_cols_;
    for (;;) {
      // Bland's rule: smallest-index entering column with negative reduced
      // cost (guarantees termination without cycling).
      std::size_t enter = limit;
      for (std::size_t j = 0; j < limit; ++j) {
        if (ReducedCost(d, j) < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter == limit) return true;  // optimal
      // Min-ratio leaving row, Bland tie-break on basis index.
      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        if (table_[i][enter] > kEps) {
          const double ratio = rhs_[i] / table_[i][enter];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == m_ || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) return false;  // unbounded
      Pivot(leave, enter);
    }
  }

  void Pivot(std::size_t r, std::size_t c) {
    const double piv = table_[r][c];
    for (double& t : table_[r]) t /= piv;
    rhs_[r] /= piv;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double factor = table_[i][c];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j < total_cols_; ++j) {
        table_[i][j] -= factor * table_[r][j];
      }
      rhs_[i] -= factor * rhs_[r];
    }
    basis_[r] = c;
  }

  // After phase 1, pivot zero-valued artificials out of the basis so phase 2
  // can ban their columns.
  void DriveOutArtificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < cols_) continue;
      bool pivoted = false;
      for (std::size_t j = 0; j < cols_; ++j) {
        if (std::abs(table_[i][j]) > kEps) {
          Pivot(i, j);
          pivoted = true;
          break;
        }
      }
      // If the row is all zero in real columns it is redundant; the basic
      // artificial stays at value 0 and is harmless (its column is banned).
      (void)pivoted;
    }
  }

  std::size_t n_, m_, cols_ = 0, num_art_ = 0, total_cols_ = 0;
  std::vector<std::vector<double>> table_;
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem) {
  Simplex simplex(problem);
  return simplex.Solve(problem);
}

}  // namespace treeagg
