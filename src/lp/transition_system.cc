#include "lp/transition_system.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace treeagg {

std::string Transition::ToInequality() const {
  std::ostringstream os;
  os << "Phi(" << to_x << "," << to_y << ") - Phi(" << from_x << ","
     << from_y << ")";
  if (rww_cost != 0) os << " + " << rww_cost;
  os << " <= ";
  if (opt_cost == 0) {
    os << "0";
  } else if (opt_cost == 1) {
    os << "c";
  } else {
    os << opt_cost << "c";
  }
  return os.str();
}

std::pair<int, int> RwwMove(int y, char request) {
  switch (request) {
    case 'R':
      // Combine: probe + response when unleased; lease refreshed to 2.
      return {2, y == 0 ? 2 : 0};
    case 'W':
      // Write: update while leased; update + release on the emptying write.
      if (y == 0) return {0, 0};
      if (y == 1) return {0, 2};
      return {1, 1};  // y == 2
    case 'N':
      // Requests in sigma(v, u) never move RWW's lease (Lemma 4.1).
      return {y, 0};
    default:
      throw std::invalid_argument("RwwMove: bad request");
  }
}

std::vector<std::pair<int, int>> OptMoves(int x, char request) {
  switch (request) {
    case 'R':
      if (x == 0) return {{0, 2}, {1, 2}};  // probe+response; may take lease
      return {{1, 0}};                      // leased read is free
    case 'W':
      if (x == 0) return {{0, 0}};          // unleased write is free
      return {{1, 1}, {0, 2}};              // update / update + release
    case 'N':
      if (x == 0) return {{0, 0}};
      return {{1, 0}, {0, 1}};              // keep / voluntary release
    default:
      throw std::invalid_argument("OptMoves: bad request");
  }
}

std::vector<Transition> BuildJointTransitions() {
  std::vector<Transition> transitions;
  for (const char request : {'R', 'W', 'N'}) {
    for (int x = 0; x <= 1; ++x) {
      for (int y = 0; y <= 2; ++y) {
        const auto [to_y, rww_cost] = RwwMove(y, request);
        for (const auto& [to_x, opt_cost] : OptMoves(x, request)) {
          transitions.push_back(
              {x, y, request, to_x, to_y, rww_cost, opt_cost});
        }
      }
    }
  }
  return transitions;
}

std::vector<Transition> Figure5Transitions() {
  // Transcribed row-by-row from Figure 5 of the paper. Each row is the
  // inequality Phi(to) - Phi(from) + rww <= opt * c for one (state,
  // request, OPT-choice) combination; the comments give the source row.
  return {
      {0, 0, 'R', 0, 2, 2, 2},  // Phi(0,2) - Phi(0,0) + 2 <= 2c
      {0, 0, 'R', 1, 2, 2, 2},  // Phi(1,2) - Phi(0,0) + 2 <= 2c
      {0, 0, 'W', 0, 0, 0, 0},  // Phi(0,0) - Phi(0,0)     <= 0
      {1, 0, 'R', 1, 2, 2, 0},  // Phi(1,2) - Phi(1,0) + 2 <= 0
      {1, 0, 'W', 0, 0, 0, 2},  // Phi(0,0) - Phi(1,0)     <= 2c
      {1, 0, 'W', 1, 0, 0, 1},  // Phi(1,0) - Phi(1,0)     <= c
      {1, 0, 'N', 0, 0, 0, 1},  // Phi(0,0) - Phi(1,0)     <= c
      {0, 2, 'R', 0, 2, 0, 2},  // Phi(0,2) - Phi(0,2)     <= 2c
      {0, 2, 'R', 1, 2, 0, 2},  // Phi(1,2) - Phi(0,2)     <= 2c
      {0, 2, 'W', 0, 1, 1, 0},  // Phi(0,1) - Phi(0,2) + 1 <= 0
      {1, 2, 'R', 1, 2, 0, 0},  // Phi(1,2) - Phi(1,2)     <= 0
      {1, 2, 'W', 0, 1, 1, 2},  // Phi(0,1) - Phi(1,2) + 1 <= 2c
      {1, 2, 'W', 1, 1, 1, 1},  // Phi(1,1) - Phi(1,2) + 1 <= c
      {1, 2, 'N', 0, 2, 0, 1},  // Phi(0,2) - Phi(1,2)     <= c
      {0, 1, 'R', 0, 2, 0, 2},  // Phi(0,2) - Phi(0,1)     <= 2c
      {0, 1, 'R', 1, 2, 0, 2},  // Phi(1,2) - Phi(0,1)     <= 2c
      {0, 1, 'W', 0, 0, 2, 0},  // Phi(0,0) - Phi(0,1) + 2 <= 0
      {1, 1, 'R', 1, 2, 0, 0},  // Phi(1,2) - Phi(1,1)     <= 0
      {1, 1, 'W', 0, 0, 2, 2},  // Phi(0,0) - Phi(1,1) + 2 <= 2c
      {1, 1, 'W', 1, 0, 2, 1},  // Phi(1,0) - Phi(1,1) + 2 <= c
      {1, 1, 'N', 0, 1, 0, 1},  // Phi(0,1) - Phi(1,1)     <= c
  };
}

int PhiIndex(int x, int y) {
  assert(x >= 0 && x <= 1 && y >= 0 && y <= 2);
  return 3 * x + y;
}

LpProblem BuildCompetitiveLp(const std::vector<Transition>& transitions) {
  LpProblem lp;
  lp.objective.assign(kNumLpVars, 0.0);
  lp.objective[kNumLpVars - 1] = 1.0;  // minimize c
  for (const Transition& t : transitions) {
    // Phi(to) - Phi(from) - opt_cost * c <= -rww_cost
    std::vector<double> row(kNumLpVars, 0.0);
    row[PhiIndex(t.to_x, t.to_y)] += 1.0;
    row[PhiIndex(t.from_x, t.from_y)] -= 1.0;
    row[kNumLpVars - 1] -= static_cast<double>(t.opt_cost);
    lp.AddRow(std::move(row), -static_cast<double>(t.rww_cost));
  }
  return lp;
}

std::vector<double> PaperLpSolution() {
  // Phi(0,0), Phi(0,1), Phi(0,2), Phi(1,0), Phi(1,1), Phi(1,2), c.
  return {0.0, 2.0, 3.0, 2.5, 2.0, 0.5, 2.5};
}

}  // namespace treeagg
