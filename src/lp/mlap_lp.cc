#include "lp/mlap_lp.h"

#include <algorithm>
#include <stdexcept>

#include "lp/simplex.h"

namespace treeagg {

double MlapBatchLpLowerBound(const std::vector<std::int64_t>& arrivals,
                             double service_cost, double delay_cost) {
  const std::size_t k = arrivals.size();
  if (k == 0) return 0;
  std::vector<std::int64_t> times = arrivals;
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  const std::size_t m = times.size();

  // Variable layout: x_t at [0, m), then y_{i,t} at m + i*m + t for every
  // (i, t) pair; pairs with t < a_i are pinned to zero by an x-free <= 0
  // row below (cheaper than a ragged layout).
  const std::size_t n = m + k * m;
  const auto y_index = [m](std::size_t i, std::size_t t) {
    return m + i * m + t;
  };

  LpProblem lp;
  lp.objective.assign(n, 0.0);
  for (std::size_t t = 0; t < m; ++t) lp.objective[t] = service_cost;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t t = 0; t < m; ++t) {
      lp.objective[y_index(i, t)] =
          delay_cost * static_cast<double>(times[t] - arrivals[i]);
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    // Coverage: -sum_{t >= a_i} y_{i,t} <= -1.
    std::vector<double> cover(n, 0.0);
    for (std::size_t t = 0; t < m; ++t) {
      if (times[t] < arrivals[i]) {
        // y_{i,t} <= 0: request i cannot be served before it arrives.
        std::vector<double> zero(n, 0.0);
        zero[y_index(i, t)] = 1.0;
        lp.AddRow(std::move(zero), 0.0);
        continue;
      }
      cover[y_index(i, t)] = -1.0;
      // Capacity: y_{i,t} - x_t <= 0.
      std::vector<double> cap(n, 0.0);
      cap[y_index(i, t)] = 1.0;
      cap[t] = -1.0;
      lp.AddRow(std::move(cap), 0.0);
    }
    lp.AddRow(std::move(cover), -1.0);
  }

  const LpSolution solution = SolveLp(lp);
  if (!solution.optimal()) {
    throw std::runtime_error("MlapBatchLpLowerBound: LP did not solve");
  }
  return solution.value;
}

double MlapLpLowerBound(const Tree& tree, const RequestSequence& sigma,
                        const MlapParams& params,
                        const std::vector<std::int64_t>* arrival_ticks) {
  if (arrival_ticks != nullptr && arrival_ticks->size() != sigma.size()) {
    throw std::invalid_argument(
        "MlapLpLowerBound: arrival_ticks size does not match sigma");
  }
  const std::vector<double> costs = MlapServiceCosts(tree);
  std::vector<std::vector<std::int64_t>> per_node(tree.size());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    if (sigma[i].op != ReqType::kCombine) continue;
    per_node[sigma[i].node].push_back(
        arrival_ticks != nullptr ? (*arrival_ticks)[i]
                                 : static_cast<std::int64_t>(i));
  }
  double total = 0;
  for (NodeId u = 0; u < tree.size(); ++u) {
    if (per_node[u].empty()) continue;
    total += MlapBatchLpLowerBound(per_node[u], costs[u], params.delay_cost);
  }
  return total;
}

}  // namespace treeagg
