// LP relaxation lower bound for the per-node MLAP batching problem.
//
// For one node with combine arrivals a_1 <= ... <= a_k, candidate service
// times are the distinct arrival ticks (serving between arrivals only adds
// delay). Variables: x_t (fractional service at time t) and y_{i,t} for
// t >= a_i (fraction of request i served at t).
//
//   minimize    sum_t C * x_t + sum_{i,t} delay_cost * (t - a_i) * y_{i,t}
//   subject to  sum_{t >= a_i} y_{i,t} >= 1        (every request served)
//               y_{i,t} <= x_t                     (only at open services)
//               x, y >= 0
//
// Every integral batching plan is feasible, so the LP value is a lower
// bound on OfflineBatchOpt; tests pin LP <= DP <= brute force. Solved with
// the from-scratch simplex in lp/simplex.h — only viable for small k, which
// is all the pricing tests need.
#ifndef TREEAGG_LP_MLAP_LP_H_
#define TREEAGG_LP_MLAP_LP_H_

#include <cstdint>
#include <vector>

#include "core/mlap.h"
#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

// LP lower bound on OfflineBatchOpt for one node's arrivals.
double MlapBatchLpLowerBound(const std::vector<std::int64_t>& arrivals,
                             double service_cost, double delay_cost);

// Sum of per-node LP bounds over sigma: a lower bound on the decoupled
// offline optimum OfflineMlapOptimum(...).cost.
double MlapLpLowerBound(const Tree& tree, const RequestSequence& sigma,
                        const MlapParams& params,
                        const std::vector<std::int64_t>* arrival_ticks =
                            nullptr);

}  // namespace treeagg

#endif  // TREEAGG_LP_MLAP_LP_H_
