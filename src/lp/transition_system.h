// The joint (OPT, RWW) transition system of Figures 4 and 5.
//
// For an ordered pair of neighboring nodes (u, v), state S(x, y) records
// x = F_OPT(u, v) in {0, 1} (does OPT hold the lease?) and
// y = F_RWW(u, v) in {0, 1, 2} (RWW's configuration: 2 after a combine,
// decremented per write, 0 = unleased). Each request of sigma'(u, v)
// (R = combine, W = write, N = noop/voluntary-release slot) moves RWW
// deterministically and OPT nondeterministically, at the per-request costs
// of Figure 2.
//
// The resulting inequalities
//     Phi(to) - Phi(from) + cost_RWW <= c * cost_OPT
// over all transitions are exactly Figure 5's linear program (minus six
// trivial 0 <= 0 self-loops the paper omits); its optimum is c = 5/2.
#ifndef TREEAGG_LP_TRANSITION_SYSTEM_H_
#define TREEAGG_LP_TRANSITION_SYSTEM_H_

#include <string>
#include <vector>

#include "lp/simplex.h"

namespace treeagg {

struct Transition {
  int from_x, from_y;
  char request;  // 'R', 'W', 'N'
  int to_x, to_y;
  int rww_cost, opt_cost;

  // True when the induced inequality is a noop self-loop (0 <= 0) — the
  // six rows Figure 5 omits. (The paper does print the two zero-cost R/W
  // self-loops, e.g. "Phi(0,0) - Phi(0,0) <= 0".)
  bool trivial() const {
    return request == 'N' && from_x == to_x && from_y == to_y &&
           rww_cost == 0 && opt_cost == 0;
  }

  std::string ToInequality() const;  // e.g. "Phi(0,2) - Phi(0,0) + 2 <= 2c"

  friend bool operator==(const Transition&, const Transition&) = default;
};

// RWW's deterministic move on a request: returns {to_y, rww_cost}.
std::pair<int, int> RwwMove(int y, char request);

// OPT's allowed moves on a request from lease state x: each {to_x, cost}.
std::vector<std::pair<int, int>> OptMoves(int x, char request);

// All transitions of the joint system (27 = 21 nontrivial + 6 trivial).
std::vector<Transition> BuildJointTransitions();

// Figure 5's literal 21 inequalities, transcribed from the paper, encoded
// as transitions for structural comparison against BuildJointTransitions().
std::vector<Transition> Figure5Transitions();

// Variable order for the LP: Phi(0,0), Phi(0,1), Phi(0,2), Phi(1,0),
// Phi(1,1), Phi(1,2), c.
inline constexpr int kNumLpVars = 7;
int PhiIndex(int x, int y);

// min c subject to the transition inequalities (and implicit Phi, c >= 0).
LpProblem BuildCompetitiveLp(const std::vector<Transition>& transitions);

// The paper's reported optimum: c = 5/2 with
// Phi = (0, 2, 3, 5/2, 2, 1/2).
std::vector<double> PaperLpSolution();

}  // namespace treeagg

#endif  // TREEAGG_LP_TRANSITION_SYSTEM_H_
