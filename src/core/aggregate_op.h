// The aggregation operator of Section 2: a commutative, associative binary
// operator over Real with an identity element. The paper writes it as (+)
// and assumes identity 0; we carry the identity explicitly so min/max work
// over the full real line.
//
// Every node's local value is initialized to the operator's identity, which
// makes the "no write yet" state equal to f over the empty write set.
#ifndef TREEAGG_CORE_AGGREGATE_OP_H_
#define TREEAGG_CORE_AGGREGATE_OP_H_

#include <string>

#include "common/types.h"

namespace treeagg {

// A stateless operator: plain function pointer keeps the hot path
// devirtualized and the type trivially copyable.
struct AggregateOp {
  const char* name;
  Real identity;
  Real (*combine)(Real, Real);

  Real operator()(Real a, Real b) const { return combine(a, b); }
};

// Built-in operators.
const AggregateOp& SumOp();    // identity 0
const AggregateOp& MinOp();    // identity +inf
const AggregateOp& MaxOp();    // identity -inf
const AggregateOp& BoolOrOp(); // identity 0; combine = (a || b) over {0,1}

// Lookup by name ("sum", "min", "max", "or"); throws on unknown name.
const AggregateOp& OpByName(const std::string& name);

}  // namespace treeagg

#endif  // TREEAGG_CORE_AGGREGATE_OP_H_
