#include "core/mlap.h"

#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

namespace treeagg {

namespace {

constexpr char kDelayName[] = "mlap";
constexpr char kDeadlineName[] = "mlap-d";

// Splits "name" or "name(arg)" off `spec` for the given prefix. Returns
// false if the prefix does not match; sets *arg to NaN for the bare form.
bool MatchSpec(const std::string& spec, const std::string& prefix,
               double* arg) {
  if (spec == prefix) {
    *arg = std::nan("");
    return true;
  }
  if (spec.size() < prefix.size() + 3 ||
      spec.compare(0, prefix.size(), prefix) != 0 ||
      spec[prefix.size()] != '(' || spec.back() != ')') {
    return false;
  }
  const std::string body =
      spec.substr(prefix.size() + 1, spec.size() - prefix.size() - 2);
  std::size_t used = 0;
  double value;
  try {
    value = std::stod(body, &used);
  } catch (...) {
    return false;
  }
  if (used != body.size()) return false;
  *arg = value;
  return true;
}

}  // namespace

bool IsMlapSpec(const std::string& spec) {
  double arg;
  // Try the longer prefix first so "mlap-d(...)" is not half-matched.
  return MatchSpec(spec, kDeadlineName, &arg) ||
         MatchSpec(spec, kDelayName, &arg);
}

MlapParams ParseMlapSpec(const std::string& spec) {
  MlapParams params;
  double arg;
  if (MatchSpec(spec, kDeadlineName, &arg)) {
    params.deadline_variant = true;
  } else if (MatchSpec(spec, kDelayName, &arg)) {
    params.deadline_variant = false;
  } else {
    throw std::invalid_argument("ParseMlapSpec: not an MLAP spec: " + spec);
  }
  if (!std::isnan(arg)) {
    if (!(arg > 0)) {
      throw std::invalid_argument(
          "ParseMlapSpec: delay cost must be positive in " + spec);
    }
    params.delay_cost = arg;
  }
  return params;
}

std::string MlapSpecString(const MlapParams& params) {
  std::string name = params.deadline_variant ? kDeadlineName : kDelayName;
  if (params.delay_cost != 1.0) {
    // Trim trailing zeros so mlap(0.5) round-trips as written.
    std::string arg = std::to_string(params.delay_cost);
    arg.erase(arg.find_last_not_of('0') + 1);
    if (!arg.empty() && arg.back() == '.') arg.pop_back();
    name += "(" + arg + ")";
  }
  return name;
}

std::vector<double> MlapServiceCosts(const Tree& tree) {
  std::vector<double> costs(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    costs[u] = 2.0 * (static_cast<double>(tree.Distance(u, 0)) + 1.0);
  }
  return costs;
}

namespace {

struct NodeQueue {
  std::vector<std::int64_t> arrivals;  // nondecreasing ticks
  std::int64_t sum = 0;
};

// Earliest integer tick at which `q` at node `u` satisfies its flush rule.
std::int64_t TriggerTick(const NodeQueue& q, double service_cost,
                         const MlapParams& params) {
  if (params.deadline_variant) {
    return q.arrivals.front() +
           static_cast<std::int64_t>(
               std::ceil(service_cost / params.delay_cost));
  }
  // Delay rule: smallest T with k*T - sum >= C_u / delay_cost, clamped so
  // no queued request gets a negative wait.
  const double k = static_cast<double>(q.arrivals.size());
  const std::int64_t t = static_cast<std::int64_t>(std::ceil(
      (service_cost / params.delay_cost + static_cast<double>(q.sum)) / k));
  return std::max(t, q.arrivals.back());
}

}  // namespace

MlapPlan BuildMlapPlan(const Tree& tree, const RequestSequence& sigma,
                       const MlapParams& params,
                       const std::vector<std::int64_t>* arrival_ticks) {
  if (!(params.delay_cost > 0)) {
    throw std::invalid_argument("BuildMlapPlan: delay_cost must be positive");
  }
  if (arrival_ticks != nullptr) {
    if (arrival_ticks->size() != sigma.size()) {
      throw std::invalid_argument(
          "BuildMlapPlan: arrival_ticks size does not match sigma");
    }
    for (std::size_t i = 1; i < arrival_ticks->size(); ++i) {
      if ((*arrival_ticks)[i] < (*arrival_ticks)[i - 1]) {
        throw std::invalid_argument(
            "BuildMlapPlan: arrival_ticks must be nondecreasing");
      }
    }
  }

  const std::vector<double> costs = MlapServiceCosts(tree);
  std::vector<NodeQueue> queues(tree.size());
  // Nonempty queues keyed by (trigger tick, node): the next flush is the
  // smallest element, ties broken by node id for determinism.
  std::set<std::pair<std::int64_t, NodeId>> pending;
  std::vector<std::int64_t> trigger_of(tree.size(), 0);

  MlapPlan plan;
  plan.batched.reserve(sigma.size());
  plan.waits.reserve(sigma.size());

  const auto tick_of = [&](std::size_t i) {
    return arrival_ticks != nullptr ? (*arrival_ticks)[i]
                                    : static_cast<std::int64_t>(i);
  };

  const auto flush_one = [&](NodeId u, std::int64_t now) {
    NodeQueue& q = queues[u];
    for (const std::int64_t a : q.arrivals) {
      plan.waits.push_back(now - a);
      plan.total_wait += now - a;
    }
    plan.served += static_cast<std::int64_t>(q.arrivals.size());
    plan.batched.push_back(Request::Combine(u));
    ++plan.flushes;
    q.arrivals.clear();
    q.sum = 0;
    pending.erase({trigger_of[u], u});
  };

  // One service: flush the trigger node; under the deadline variant the
  // service's root path also serves every ancestor's pending queue
  // (deepest first), and the whole cascade is priced at the deepest node.
  const auto service = [&](NodeId u, std::int64_t now) {
    plan.modeled_service_cost += costs[u];
    flush_one(u, now);
    if (params.deadline_variant) {
      for (NodeId v = tree.RootedParent(u); v != kInvalidNode;
           v = tree.RootedParent(v)) {
        if (!queues[v].arrivals.empty()) flush_one(v, now);
      }
    }
  };

  std::size_t i = 0;
  while (i < sigma.size() || !pending.empty()) {
    const bool have_arrival = i < sigma.size();
    // Requests arriving at tick T are processed before flushes at T, so a
    // request landing exactly at a node's trigger joins that batch.
    if (have_arrival &&
        (pending.empty() || tick_of(i) <= pending.begin()->first)) {
      const std::int64_t now = tick_of(i);
      const Request& r = sigma[i];
      ++i;
      if (r.op == ReqType::kWrite) {
        plan.batched.push_back(r);
        continue;
      }
      NodeQueue& q = queues[r.node];
      if (!q.arrivals.empty()) pending.erase({trigger_of[r.node], r.node});
      q.arrivals.push_back(now);
      q.sum += now;
      trigger_of[r.node] = TriggerTick(q, costs[r.node], params);
      pending.insert({trigger_of[r.node], r.node});
    } else {
      const auto [now, u] = *pending.begin();
      service(u, now);
    }
  }

  plan.modeled_total_cost =
      plan.modeled_service_cost +
      params.delay_cost * static_cast<double>(plan.total_wait);
  return plan;
}

}  // namespace treeagg
