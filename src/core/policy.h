// The policy side of the paper's mechanism/policy split.
//
// Figure 1 underlines eight stub calls; a lease-based *algorithm* is the
// mechanism plus a policy supplying those stubs. The consistency results
// (strict consistency in sequential executions, causal consistency in
// concurrent executions) hold for EVERY policy; the competitive-ratio
// results are specific to RWW.
#ifndef TREEAGG_CORE_POLICY_H_
#define TREEAGG_CORE_POLICY_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace treeagg {

// Read-only view of a node's mechanism state, for policy decisions.
class LeaseNodeView {
 public:
  virtual ~LeaseNodeView() = default;
  virtual NodeId self() const = 0;
  virtual const std::vector<NodeId>& nbrs() const = 0;
  // u.taken[v]: the lease v -> self is set (self holds v's subtree value).
  virtual bool taken(NodeId v) const = 0;
  // u.granted[v]: the lease self -> v is set (self pushes updates to v).
  virtual bool granted(NodeId v) const = 0;
  // |uaw[v]|: updates received from v and not yet covered by a lease reset.
  virtual std::size_t UawSize(NodeId v) const = 0;
  // grntd() \ {w} != empty.
  virtual bool GrantedToOtherThan(NodeId w) const = 0;
};

// Policy hooks. The names mirror the underlined stubs of Figure 1:
// oncombine, probercvd, responsercvd, updatercvd, releasercvd,
// releasepolicy, setlease, breaklease. OnLocalWrite is an extension hook
// (absent from Figure 1) used only by generalized (a,b) policies with
// a > 1; RWW and the static policies ignore it.
class LeasePolicy {
 public:
  virtual ~LeasePolicy() = default;

  virtual void OnCombine(const LeaseNodeView& /*node*/) {}
  virtual void OnProbeReceived(const LeaseNodeView& /*node*/, NodeId /*w*/) {}
  virtual void OnResponseReceived(const LeaseNodeView& /*node*/, bool /*flag*/,
                                  NodeId /*w*/) {}
  virtual void OnUpdateReceived(const LeaseNodeView& /*node*/, NodeId /*w*/) {}
  virtual void OnReleaseReceived(const LeaseNodeView& /*node*/, NodeId /*w*/) {}
  // releasepolicy(v): called from onrelease() after uaw[v] was trimmed and
  // only when isgoodforrelease(v) holds.
  virtual void OnReleaseTrim(const LeaseNodeView& /*node*/, NodeId /*v*/) {}
  virtual void OnLocalWrite(const LeaseNodeView& /*node*/) {}

  // setlease(w): may the mechanism set granted[w] while sending a response?
  virtual bool SetLease(const LeaseNodeView& node, NodeId w) = 0;
  // breaklease(v): should the mechanism send a release for the taken lease
  // from v? Only consulted when isgoodforrelease(v) holds and taken[v].
  virtual bool BreakLease(const LeaseNodeView& node, NodeId v) = 0;

  virtual std::string name() const = 0;
};

// Creates one policy instance per node.
using PolicyFactory = std::function<std::unique_ptr<LeasePolicy>(
    NodeId self, const std::vector<NodeId>& nbrs)>;

}  // namespace treeagg

#endif  // TREEAGG_CORE_POLICY_H_
