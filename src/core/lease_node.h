// The lease-based aggregation mechanism of Figure 1 (and Figure 6 with the
// ghost actions), transcribed action-for-action.
//
// A LeaseNode is a reactive automaton: the driver (sequential simulator,
// concurrent simulator, or threaded runtime) feeds it local requests
// (LocalCombine / LocalWrite) and delivered messages (Deliver), and the
// node emits messages through its Transport and completes combines through
// its completion callback.
//
// State variables map one-to-one onto the paper's:
//   taken[], granted[], aval[], val, uaw[], pndg, snt[], upcntr, sntupdates
// plus the ghost log of Figure 6 when ghost logging is enabled.
#ifndef TREEAGG_CORE_LEASE_NODE_H_
#define TREEAGG_CORE_LEASE_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/small_vec.h"
#include "common/types.h"
#include "core/aggregate_op.h"
#include "core/message.h"
#include "core/policy.h"
#include "obs/metrics.h"
#include "query/snapshot.h"

namespace treeagg {

// Token identifying a pending local combine; echoed to the completion
// callback so drivers can match results to requests.
using CombineToken = std::int64_t;

// Called when a combine initiated at `node` completes with the global
// aggregate `value`. Fired once per outstanding token; in sequential
// executions there is exactly one.
using CombineDoneFn =
    std::function<void(NodeId node, CombineToken token, Real value)>;

class LeaseNode final : public LeaseNodeView {
 public:
  // Snapshot of the node's protocol state for crash-restart recovery
  // (fail-stop with durable state: the networked backend models a node
  // that write-ahead-logs its state at frame-processing boundaries). The
  // snapshot covers everything Figure 1/6 carries across deliveries —
  // including pndg and the tokens of in-flight local combines, which are
  // plain data — so a node restored from it resumes exactly where the
  // crashed instance stopped. Policy-internal state is NOT captured: a
  // restarted node gets a fresh policy object, which may change future
  // lease decisions but never correctness (the mechanism is correct under
  // every policy). last-write/seen ghost indices are rebuilt from the log.
  struct DurableState {
    Real val = 0;
    UpdateId upcntr = 0;
    struct NeighborState {
      NodeId id = kInvalidNode;
      bool taken = false;
      bool granted = false;
      Real aval = 0;
      std::vector<UpdateId> uaw;
      std::vector<std::pair<UpdateId, UpdateId>> snt_updates;  // (rcvid, sntid)

      friend bool operator==(const NeighborState&, const NeighborState&) =
          default;
    };
    std::vector<NeighborState> neighbors;  // parallel to nbrs
    struct PendingState {
      NodeId requester = kInvalidNode;
      std::vector<NodeId> waiting;

      friend bool operator==(const PendingState&, const PendingState&) =
          default;
    };
    std::vector<PendingState> pndg;
    std::vector<CombineToken> local_tokens;
    GhostLog ghost_log;

    friend bool operator==(const DurableState&, const DurableState&) = default;
  };

  LeaseNode(NodeId self, std::vector<NodeId> nbrs, const AggregateOp& op,
            std::unique_ptr<LeasePolicy> policy, Transport* transport,
            CombineDoneFn combine_done, bool ghost_logging = false);

  LeaseNode(const LeaseNode&) = delete;
  LeaseNode& operator=(const LeaseNode&) = delete;

  // --- Request entry points -------------------------------------------
  // T1: a combine request initiated at this node.
  void LocalCombine(CombineToken token);
  // T2: a write request initiated at this node. `write_id` is the global
  // request id for the ghost log (kNoRequest when untracked).
  void LocalWrite(Real arg, ReqId write_id = kNoRequest);
  // T3..T6: a message delivered from a neighbor.
  void Deliver(const Message& m);

  // --- Crash-restart recovery ------------------------------------------
  // Snapshot / restore of the durable protocol state (see DurableState).
  // ImportState requires the node to be freshly constructed with the same
  // (self, nbrs, op, ghost_logging) as the exporting instance.
  DurableState ExportState() const;
  void ImportState(const DurableState& state);

  // --- LeaseNodeView ---------------------------------------------------
  NodeId self() const override { return self_; }
  const std::vector<NodeId>& nbrs() const override { return nbrs_; }
  bool taken(NodeId v) const override { return per_[Idx(v)].taken; }
  bool granted(NodeId v) const override { return per_[Idx(v)].granted; }
  std::size_t UawSize(NodeId v) const override { return per_[Idx(v)].uaw.size(); }
  bool GrantedToOtherThan(NodeId w) const override;

  // --- Observers for tests, checkers, and the quiescent-state lemmas ---
  Real val() const { return val_; }
  Real aval(NodeId v) const { return per_[Idx(v)].aval; }
  const ReleaseIdSet& uaw(NodeId v) const { return per_[Idx(v)].uaw; }
  bool InPndg(NodeId w) const;
  std::size_t PndgSize() const { return pndg_.size(); }
  std::size_t SntSize(NodeId w) const;
  std::size_t SntUpdatesSize() const;
  std::vector<NodeId> Tkn() const;
  std::vector<NodeId> Grntd() const;
  // gval() / subval(w) of Figure 1.
  Real Gval() const;
  Real Subval(NodeId w) const;
  const LeasePolicy& policy() const { return *policy_; }
  LeasePolicy& mutable_policy() { return *policy_; }

  // Ghost state (Section 5). Empty when ghost logging is disabled.
  const std::vector<GhostWrite>& GhostLogEntries() const { return log_writes_; }
  // Most recent write id seen from each node (kNoRequest if none): the
  // recentwrites(u.log, q) snapshot used for gather return values.
  const std::unordered_map<NodeId, ReqId>& LastWrites() const {
    return last_write_;
  }
  bool ghost_logging() const { return ghost_; }

  // --- Observability ----------------------------------------------------
  // Attaches per-message-kind send/receive and lease grant/revoke counters
  // (the Figure 2 cost categories). Null — the default — disables
  // instrumentation: the hot paths then pay one never-taken branch, and
  // the sequential driver bench never attaches a bundle. The bundle must
  // outlive the node; counters are lock-free, so any backend (DES, actor
  // runtime, daemon poll loop) may share one bundle across nodes.
  void set_metrics(obs::ProtocolMetrics* metrics) { obs_ = metrics; }

  // --- Snapshot query tier ----------------------------------------------
  // Attaches the node's seqlock snapshot slot. Like the metrics bundle,
  // null (the default) disables the read tier at the cost of one
  // never-taken branch per transition. The slot must outlive the node and
  // have no other writer: publishing happens on whatever thread drives
  // this node's transitions, which is the slot's unique-writer contract.
  // Attaching publishes immediately, so a slot is never unreadably stale.
  void set_query_slot(query::SnapshotSlot* slot) {
    qslot_ = slot;
    PublishSnapshot();
  }

 private:
  // One of the paper's sntupdates tuples {node, rcvid, sntid}, with the
  // node component implicit: tuples are stored on the PerNeighbor entry of
  // the neighbor the update was received from, so onrelease only scans the
  // tuples it can match instead of the whole pooled list. Within one
  // neighbor's list sntid is strictly increasing (ids come from upcntr),
  // so the `sntid >= min_id` filter selects a suffix.
  struct SntUpdate {
    UpdateId rcvid;
    UpdateId sntid;
  };
  struct PerNeighbor {
    NodeId id = kInvalidNode;
    bool taken = false;
    bool granted = false;
    Real aval = 0;
    ReleaseIdSet uaw;  // sorted; update ids from a sender arrive monotone
    std::vector<SntUpdate> snt_updates;  // sntid ascending
  };
  // One pending requester (a neighbor, or self for a local combine) and the
  // set of neighbors whose responses are still outstanding (snt[w]).
  // Sorted ascending, mirroring the std::set it replaces.
  using WaitSet = SmallVec<NodeId, 8>;
  struct Pending {
    NodeId requester;
    WaitSet waiting;
  };

  std::size_t Idx(NodeId v) const;
  bool IsNbr(NodeId v) const;
  bool AnyGranted() const;  // Grntd().empty() without the allocation

  // Figure 1 procedures.
  void SendProbes(NodeId w);                       // sendprobes(w)
  void ForwardUpdates(NodeId w, UpdateId id);      // forwardupdates(w, id)
  void SendResponse(NodeId w);                     // sendresponse(w)
  bool IsGoodForRelease(NodeId w) const;           // isgoodforrelease(w)
  void OnRelease(NodeId w, const ReleaseIdSet& s);  // onrelease
  void ForwardRelease();                           // forwardrelease()
  UpdateId NewId() { return ++upcntr_; }           // newid()

  // Union of all snt[w]: the paper's sntprobes().
  bool AlreadyProbed(NodeId v) const;

  // Counts the outgoing message (send by kind; grants on flagged
  // responses; revokes on releases) and forwards it to the transport.
  void Emit(Message m);

  void CompleteLocalCombines();

  // Ghost helpers.
  std::shared_ptr<const GhostLog> GhostSnapshot();
  void GhostAppendLocalWrite(ReqId id);
  void GhostMerge(const Message& m);

  // Publishes gval() + the current ghost-log length into the attached
  // snapshot slot (no-op without one). Runs at the tail of every request
  // entry point, so the slot always holds the latest mechanism-visible
  // estimate.
  void PublishSnapshot() {
    if (qslot_ != nullptr) {
      qslot_->Publish(
          Gval(),
          ghost_ ? static_cast<std::int64_t>(log_writes_.size()) : -1);
    }
  }

  const NodeId self_;
  const std::vector<NodeId> nbrs_;
  const AggregateOp op_;
  const std::unique_ptr<LeasePolicy> policy_;
  Transport* const transport_;
  const CombineDoneFn combine_done_;
  const bool ghost_;
  obs::ProtocolMetrics* obs_ = nullptr;
  query::SnapshotSlot* qslot_ = nullptr;

  Real val_;
  std::vector<PerNeighbor> per_;  // parallel to nbrs_
  std::vector<Pending> pndg_;
  UpdateId upcntr_ = 0;
  std::vector<CombineToken> local_tokens_;  // combines awaiting gval()

  // Ghost log: all writes known to this node, in arrival order.
  std::vector<GhostWrite> log_writes_;
  std::unordered_map<NodeId, ReqId> last_write_;
  std::unordered_map<ReqId, bool> ghost_seen_;
  std::shared_ptr<const GhostLog> ghost_snapshot_;  // cache; invalidated on append
};

}  // namespace treeagg

#endif  // TREEAGG_CORE_LEASE_NODE_H_
