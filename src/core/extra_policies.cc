#include "core/extra_policies.h"

#include <memory>
#include <stdexcept>

#include "core/mlap.h"
#include "core/policies.h"

namespace treeagg {

// ------------------------------------------------------------- timer ----

TimerLeasePolicy::TimerLeasePolicy(int ttl) : ttl_(ttl) {}

void TimerLeasePolicy::Tick() { ++clock_; }

void TimerLeasePolicy::OnCombine(const LeaseNodeView&) { Tick(); }
void TimerLeasePolicy::OnProbeReceived(const LeaseNodeView&, NodeId) {
  Tick();
}
void TimerLeasePolicy::OnResponseReceived(const LeaseNodeView&, bool flag,
                                          NodeId w) {
  Tick();
  if (flag) taken_at_[w] = clock_;
}
void TimerLeasePolicy::OnUpdateReceived(const LeaseNodeView&, NodeId) {
  Tick();
}
void TimerLeasePolicy::OnReleaseReceived(const LeaseNodeView&, NodeId) {
  Tick();
}

bool TimerLeasePolicy::SetLease(const LeaseNodeView&, NodeId) { return true; }

bool TimerLeasePolicy::BreakLease(const LeaseNodeView&, NodeId v) {
  const auto it = taken_at_.find(v);
  if (it == taken_at_.end()) return true;  // unknown age: release
  return clock_ - it->second >= ttl_;
}

std::string TimerLeasePolicy::name() const {
  return "timer(" + std::to_string(ttl_) + ")";
}

// ----------------------------------------------------- probabilistic ----

ProbabilisticPolicy::ProbabilisticPolicy(double break_probability,
                                         std::uint64_t seed)
    : p_(break_probability), rng_(seed) {}

bool ProbabilisticPolicy::SetLease(const LeaseNodeView&, NodeId) {
  return true;
}

bool ProbabilisticPolicy::BreakLease(const LeaseNodeView&, NodeId) {
  return rng_.NextBool(p_);
}

std::string ProbabilisticPolicy::name() const {
  return "prob(" + std::to_string(p_).substr(0, 4) + ")";
}

// -------------------------------------------------------------- ewma ----

EwmaPolicy::EwmaPolicy(double alpha) : alpha_(alpha) {}

void EwmaPolicy::Bump(NodeId v, bool is_read) {
  Rates& r = rates_[v];
  r.reads = (1 - alpha_) * r.reads + (is_read ? alpha_ : 0.0);
  r.writes = (1 - alpha_) * r.writes + (is_read ? 0.0 : alpha_);
}

void EwmaPolicy::OnCombine(const LeaseNodeView& node) {
  // A local combine is read traffic in sigma(v, u) for every neighbor v:
  // it makes holding each taken lease more attractive, but does not affect
  // the decision to GRANT (that direction sees it as remote activity).
  for (const NodeId v : node.nbrs()) Bump(v, /*is_read=*/true);
}

void EwmaPolicy::OnProbeReceived(const LeaseNodeView& node, NodeId w) {
  // A probe from w is a read in sigma(u, w): evidence for granting to w.
  Bump(w, /*is_read=*/true);
  (void)node;
}

void EwmaPolicy::OnUpdateReceived(const LeaseNodeView& node, NodeId w) {
  // An update from w is write traffic from w's side.
  Bump(w, /*is_read=*/false);
  (void)node;
}

void EwmaPolicy::OnLocalWrite(const LeaseNodeView& node) {
  for (const NodeId v : node.nbrs()) Bump(v, /*is_read=*/false);
}

bool EwmaPolicy::SetLease(const LeaseNodeView&, NodeId w) {
  const auto it = rates_.find(w);
  if (it == rates_.end()) return true;
  return it->second.reads >= it->second.writes;
}

bool EwmaPolicy::BreakLease(const LeaseNodeView&, NodeId v) {
  const auto it = rates_.find(v);
  if (it == rates_.end()) return false;
  // Hold the lease while reads are at least half as frequent as writes
  // (a hysteresis band so the policy does not thrash at the boundary).
  return it->second.writes > 2.0 * it->second.reads;
}

std::string EwmaPolicy::name() const { return "ewma"; }

double EwmaPolicy::ReadRate(NodeId v) const {
  const auto it = rates_.find(v);
  return it == rates_.end() ? 0 : it->second.reads;
}

double EwmaPolicy::WriteRate(NodeId v) const {
  const auto it = rates_.find(v);
  return it == rates_.end() ? 0 : it->second.writes;
}

// --------------------------------------------------------- factories ----

PolicyFactory EagerBreakFactory() {
  return [](NodeId, const std::vector<NodeId>&) {
    return std::make_unique<EagerBreakPolicy>();
  };
}

PolicyFactory TimerLeaseFactory(int ttl) {
  return [ttl](NodeId, const std::vector<NodeId>&) {
    return std::make_unique<TimerLeasePolicy>(ttl);
  };
}

PolicyFactory ProbabilisticFactory(double break_probability,
                                   std::uint64_t seed) {
  return [break_probability, seed](NodeId self, const std::vector<NodeId>&) {
    // Distinct stream per node so nodes do not make mirrored decisions.
    return std::make_unique<ProbabilisticPolicy>(
        break_probability, seed + static_cast<std::uint64_t>(self) * 1315423911ull);
  };
}

PolicyFactory EwmaFactory(double alpha) {
  return [alpha](NodeId, const std::vector<NodeId>&) {
    return std::make_unique<EwmaPolicy>(alpha);
  };
}

std::vector<NamedPolicy> AllPolicies() {
  std::vector<NamedPolicy> policies = StandardPolicies();
  policies.push_back({"timer(16)", TimerLeaseFactory(16)});
  policies.push_back({"prob(0.3)", ProbabilisticFactory(0.3, 99)});
  policies.push_back({"ewma", EwmaFactory()});
  return policies;
}

namespace {

// Parses "name(x[,y])" into its arguments; returns false on shape mismatch.
bool ParseArgs(const std::string& spec, const std::string& prefix,
               std::vector<double>* out) {
  if (spec.size() < prefix.size() + 2 ||
      spec.compare(0, prefix.size(), prefix) != 0 ||
      spec[prefix.size()] != '(' || spec.back() != ')') {
    return false;
  }
  out->clear();
  std::string body = spec.substr(prefix.size() + 1,
                                 spec.size() - prefix.size() - 2);
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string token =
        body.substr(pos, comma == std::string::npos ? body.size() - pos
                                                    : comma - pos);
    try {
      out->push_back(std::stod(token));
    } catch (...) {
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

std::string PolicySpecHelp() {
  return "RWW, lease(a,b), push-all, pull-all, eager-break, timer(k), "
         "prob(p), ewma, ewma(alpha), mlap, mlap(c), mlap-d, mlap-d(c)";
}

PolicyFactory PolicyBySpec(const std::string& spec) {
  if (spec == "RWW" || spec == "rww") return RwwFactory();
  if (spec == "push-all") return PushAllFactory();
  if (spec == "pull-all") return PullAllFactory();
  if (spec == "eager-break") return EagerBreakFactory();
  if (spec == "ewma") return EwmaFactory();
  if (IsMlapSpec(spec)) {
    // MLAP is a request-scheduling transform (core/mlap.h) in front of the
    // unmodified RWW mechanism: validate the spec, then hand back RWW. The
    // caller applies BuildMlapPlan to the sequence; daemons and cluster
    // configs carry the spec string unchanged, so nothing new rides the
    // wire.
    ParseMlapSpec(spec);
    return RwwFactory();
  }
  std::vector<double> args;
  if (ParseArgs(spec, "lease", &args) && args.size() == 2) {
    return AbFactory(static_cast<int>(args[0]), static_cast<int>(args[1]));
  }
  if (ParseArgs(spec, "timer", &args) && args.size() == 1) {
    return TimerLeaseFactory(static_cast<int>(args[0]));
  }
  if (ParseArgs(spec, "prob", &args) && args.size() == 1) {
    return ProbabilisticFactory(args[0], 99);
  }
  if (ParseArgs(spec, "ewma", &args) && args.size() == 1) {
    return EwmaFactory(args[0]);
  }
  throw std::invalid_argument("PolicyBySpec: unknown policy spec " + spec);
}

}  // namespace treeagg
