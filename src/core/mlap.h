// MLAP: multi-level aggregation with delays/deadlines, as an online
// delay-and-batch policy family beside RWW.
//
// The Multi-Level Aggregation Problem (Bienkowski et al., "Online Algorithms
// for Multi-Level Aggregation") generalizes TCP acknowledgement to trees:
// requests arrive over time at tree nodes, each service transmits along a
// rooted path and serves every pending request on it, and the algorithm pays
// service cost plus accumulated delay. Buchbinder-Feldman-Naor-Talmon give
// the O(depth)-competitive refinement for the deadline variant (MLAP-D).
//
// In this codebase MLAP is NOT a new wire protocol or a new LeasePolicy
// subclass: it is a deterministic *request-scheduling transform* layered in
// front of the unmodified Figure 1/6 mechanism. Combine requests accumulate
// per node; when a node's accumulated delay reaches its service cost (the
// Bienkowski delay rule) or its oldest request's deadline expires (the BFNT
// MLAP-D rule), the node flushes: one mechanism Combine is issued, which
// triggers the usual probe/response traffic up the path and serves every
// combine queued there. Writes pass through untransformed. Because the
// output is an ordinary RequestSequence executed under RWW, policy selection
// rides the existing wire with no frame changes, and all three backends
// (sim, runtime, net) stay bit-identical on the transformed sequence.
//
// Service cost model: C_u = 2 * (depth(u) + 1) — the Figure 2 ledger cost of
// a probe/response round trip on every edge of the root->u path, plus the
// root edge itself (so the root still has nonzero service cost and batching
// is meaningful at every depth).
#ifndef TREEAGG_CORE_MLAP_H_
#define TREEAGG_CORE_MLAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tree/topology.h"
#include "workload/request.h"

namespace treeagg {

struct MlapParams {
  // false: Bienkowski delay rule ("mlap") — node u flushes at the earliest
  //        tick T where delay_cost * sum_i (T - a_i) >= C_u over its queue.
  // true:  BFNT deadline rule ("mlap-d") — node u flushes when its oldest
  //        request has waited ceil(C_u / delay_cost) ticks, and the flush
  //        cascades to every ancestor with a nonempty queue (path sharing:
  //        serving u's root path serves everything pending on it).
  bool deadline_variant = false;
  // Cost per request per tick of waiting. Larger values make delay more
  // expensive, so batches flush sooner (the latency knob of the
  // latency-vs-messages frontier).
  double delay_cost = 1.0;

  friend bool operator==(const MlapParams&, const MlapParams&) = default;
};

// True iff `spec` names an MLAP policy: "mlap", "mlap(c)", "mlap-d",
// "mlap-d(c)".
bool IsMlapSpec(const std::string& spec);

// Parses an MLAP spec into its parameters. Throws std::invalid_argument on
// anything IsMlapSpec rejects or a non-positive delay cost.
MlapParams ParseMlapSpec(const std::string& spec);

// Canonical spec string for a parameter set, e.g. "mlap-d(0.5)".
std::string MlapSpecString(const MlapParams& params);

// Per-node service cost C_u = 2 * (depth(u) + 1).
std::vector<double> MlapServiceCosts(const Tree& tree);

// The result of running the MLAP automaton over a request sequence.
struct MlapPlan {
  // The transformed sequence: writes in arrival order, one Combine per
  // flush. Executing this under the RWW mechanism realizes the policy.
  RequestSequence batched;
  // Wait (flush tick - arrival tick) of every served combine, in service
  // order. waits.size() == number of combines in the input sequence.
  std::vector<std::int64_t> waits;
  std::int64_t flushes = 0;        // combines in `batched`
  std::int64_t served = 0;         // combines in the input sequence
  std::int64_t total_wait = 0;     // sum of `waits`
  // Modeled MLAP objective: sum of C_u over services (a deadline-variant
  // cascade is one service, priced at its deepest node) ...
  double modeled_service_cost = 0;
  // ... plus delay_cost * total_wait.
  double modeled_total_cost = 0;
};

// Runs the MLAP automaton. `arrival_ticks`, when given, must be
// sigma.size() entries, nondecreasing; when null, request i arrives at
// tick i. Deterministic: same inputs, same plan, on every backend.
MlapPlan BuildMlapPlan(const Tree& tree, const RequestSequence& sigma,
                       const MlapParams& params,
                       const std::vector<std::int64_t>* arrival_ticks =
                           nullptr);

}  // namespace treeagg

#endif  // TREEAGG_CORE_MLAP_H_
