// Protocol messages of the lease-based mechanism (Figure 1):
//
//   probe()          v -> u : pull the aggregate of subtree(u, v)
//   response(x,flag) u -> v : x = subval(v); flag = lease granted u->v
//   update(x,id)     u -> v : new subval(v) after a write; id from upcntr
//   release(S)       v -> u : break the lease u->v; S = uaw ids
//
// Messages optionally piggyback the ghost write-log of Section 5 (Figure 6):
// proof instrumentation used by the causal-consistency checker, never
// counted as protocol cost.
#ifndef TREEAGG_CORE_MESSAGE_H_
#define TREEAGG_CORE_MESSAGE_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/small_vec.h"
#include "common/types.h"

namespace treeagg {

enum class MsgType { kProbe, kResponse, kUpdate, kRelease };

const char* ToString(MsgType t);

// A ghost write-log entry: the global request id of a write and the node it
// was issued at. (The paper's wlog carries whole requests; id + node is what
// the Section 5 constructions need.)
struct GhostWrite {
  ReqId id = kNoRequest;
  NodeId node = kInvalidNode;
  friend bool operator==(const GhostWrite&, const GhostWrite&) = default;
};

using GhostLog = std::vector<GhostWrite>;

// A release's uaw set S. Small-buffer-optimized: in measured workloads the
// overwhelming majority of releases carry <= 4 unacknowledged-update ids,
// so the common case never touches the heap (see SmallVec).
using ReleaseIdSet = SmallVec<UpdateId, 4>;

struct Message {
  MsgType type = MsgType::kProbe;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  Real x = 0;                       // response / update payload
  bool flag = false;                // response: lease granted?
  UpdateId id = 0;                  // update: sender-local id
  ReleaseIdSet release_ids;         // release: the uaw set S

  // Ghost wlog snapshot (Figure 6); shared and immutable to avoid copying
  // on fan-out. Null when ghost logging is disabled.
  std::shared_ptr<const GhostLog> wlog;
};

std::ostream& operator<<(std::ostream& os, const Message& m);

// Transport abstraction: the mechanism sends through this; the simulator
// and the threaded runtime implement it.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void Send(Message m) = 0;
};

}  // namespace treeagg

#endif  // TREEAGG_CORE_MESSAGE_H_
