#include "core/policies.h"

#include <memory>

namespace treeagg {

// ---------------------------------------------------------------- RWW ----

void RwwPolicy::OnCombine(const LeaseNodeView& node) {
  // A combine at this node is combine activity in sigma(v, u) for every
  // taken lease v -> u: refresh the timers (Lemma 4.2, case T1).
  for (const NodeId v : node.nbrs()) {
    if (node.taken(v)) lt_[v] = 2;
  }
}

void RwwPolicy::OnProbeReceived(const LeaseNodeView& node, NodeId w) {
  // A probe from w witnesses a combine on w's side: refresh every taken
  // lease except the one towards w (Lemma 4.2, case T3).
  for (const NodeId v : node.nbrs()) {
    if (v != w && node.taken(v)) lt_[v] = 2;
  }
}

void RwwPolicy::OnResponseReceived(const LeaseNodeView& /*node*/, bool flag,
                                   NodeId w) {
  if (flag) lt_[w] = 2;  // fresh lease (Lemma 4.2, case T4)
}

void RwwPolicy::OnUpdateReceived(const LeaseNodeView& node, NodeId w) {
  // Count the write only when this node is the propagation frontier
  // (no onward grants besides w): Lemma 4.2, case T5.
  if (!node.GrantedToOtherThan(w)) lt_[w] -= 1;
}

void RwwPolicy::OnReleaseTrim(const LeaseNodeView& node, NodeId v) {
  // releasepolicy(v): lt[v] -= |uaw[v]| with uaw already trimmed
  // (Lemma 4.2, case T6).
  lt_[v] -= static_cast<int>(node.UawSize(v));
}

bool RwwPolicy::SetLease(const LeaseNodeView& /*node*/, NodeId /*w*/) {
  return true;  // RWW always grants on a combine (Lemma 4.3 part 1)
}

bool RwwPolicy::BreakLease(const LeaseNodeView& /*node*/, NodeId v) {
  const NeighborCounterMap::Entry* e = lt_.Find(v);
  return e != nullptr && e->value <= 0;
}

int RwwPolicy::lt(NodeId v) const {
  const NeighborCounterMap::Entry* e = lt_.Find(v);
  return e == nullptr ? 0 : e->value;
}

// ------------------------------------------------------------- (a, b) ----

AbPolicy::AbPolicy(int a, int b) : a_(a), b_(b) {}

void AbPolicy::OnCombine(const LeaseNodeView& node) {
  for (const NodeId v : node.nbrs()) {
    if (node.taken(v)) lt_[v] = b_;
  }
}

void AbPolicy::OnProbeReceived(const LeaseNodeView& node, NodeId w) {
  for (const NodeId v : node.nbrs()) {
    if (v != w && node.taken(v)) lt_[v] = b_;
  }
  // One more consecutive combine observed from w's side.
  cc_[w] += 1;
}

void AbPolicy::OnResponseReceived(const LeaseNodeView& /*node*/, bool flag,
                                  NodeId w) {
  if (flag) lt_[w] = b_;
}

void AbPolicy::OnUpdateReceived(const LeaseNodeView& node, NodeId w) {
  if (!node.GrantedToOtherThan(w)) lt_[w] -= 1;
  // A write on w's side interrupts combine runs for every other direction.
  for (auto& e : cc_) {
    if (e.key != w) e.value = 0;
  }
}

void AbPolicy::OnReleaseTrim(const LeaseNodeView& node, NodeId v) {
  lt_[v] -= static_cast<int>(node.UawSize(v));
}

void AbPolicy::OnLocalWrite(const LeaseNodeView& /*node*/) {
  // A local write is a write in sigma(u, v) for every neighbor v: it
  // interrupts every consecutive-combine run.
  for (auto& e : cc_) e.value = 0;
}

bool AbPolicy::SetLease(const LeaseNodeView& /*node*/, NodeId w) {
  if (cc_[w] >= a_) {
    cc_[w] = 0;
    return true;
  }
  return false;
}

bool AbPolicy::BreakLease(const LeaseNodeView& /*node*/, NodeId v) {
  const NeighborCounterMap::Entry* e = lt_.Find(v);
  return e != nullptr && e->value <= 0;
}

int AbPolicy::lt(NodeId v) const {
  const NeighborCounterMap::Entry* e = lt_.Find(v);
  return e == nullptr ? 0 : e->value;
}

std::string AbPolicy::name() const {
  return "lease(" + std::to_string(a_) + "," + std::to_string(b_) + ")";
}

// ---------------------------------------------------------- factories ----

PolicyFactory RwwFactory() {
  return [](NodeId, const std::vector<NodeId>&) {
    return std::make_unique<RwwPolicy>();
  };
}

PolicyFactory AbFactory(int a, int b) {
  return [a, b](NodeId, const std::vector<NodeId>&) {
    return std::make_unique<AbPolicy>(a, b);
  };
}

PolicyFactory PushAllFactory() {
  return [](NodeId, const std::vector<NodeId>&) {
    return std::make_unique<PushAllPolicy>();
  };
}

PolicyFactory PullAllFactory() {
  return [](NodeId, const std::vector<NodeId>&) {
    return std::make_unique<PullAllPolicy>();
  };
}

std::vector<NamedPolicy> StandardPolicies() {
  return {
      {"RWW", RwwFactory()},
      {"lease(1,1)", AbFactory(1, 1)},
      {"lease(1,3)", AbFactory(1, 3)},
      {"lease(2,2)", AbFactory(2, 2)},
      {"push-all", PushAllFactory()},
      {"pull-all", PullAllFactory()},
  };
}

}  // namespace treeagg
