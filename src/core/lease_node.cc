#include "core/lease_node.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace treeagg {

// The obs message-kind index space mirrors MsgType declaration order.
static_assert(obs::kMsgKinds == 4);
static_assert(static_cast<int>(MsgType::kProbe) == 0 &&
              static_cast<int>(MsgType::kResponse) == 1 &&
              static_cast<int>(MsgType::kUpdate) == 2 &&
              static_cast<int>(MsgType::kRelease) == 3);

LeaseNode::LeaseNode(NodeId self, std::vector<NodeId> nbrs,
                     const AggregateOp& op,
                     std::unique_ptr<LeasePolicy> policy, Transport* transport,
                     CombineDoneFn combine_done, bool ghost_logging)
    : self_(self),
      nbrs_(std::move(nbrs)),
      op_(op),
      policy_(std::move(policy)),
      transport_(transport),
      combine_done_(std::move(combine_done)),
      ghost_(ghost_logging),
      val_(op.identity) {
  assert(policy_ != nullptr);
  assert(transport_ != nullptr);
  per_.resize(nbrs_.size());
  for (std::size_t i = 0; i < nbrs_.size(); ++i) {
    per_[i].id = nbrs_[i];
    per_[i].aval = op_.identity;
  }
}

LeaseNode::DurableState LeaseNode::ExportState() const {
  DurableState state;
  state.val = val_;
  state.upcntr = upcntr_;
  state.neighbors.reserve(per_.size());
  for (const PerNeighbor& p : per_) {
    DurableState::NeighborState ns;
    ns.id = p.id;
    ns.taken = p.taken;
    ns.granted = p.granted;
    ns.aval = p.aval;
    ns.uaw.assign(p.uaw.begin(), p.uaw.end());
    ns.snt_updates.reserve(p.snt_updates.size());
    for (const SntUpdate& su : p.snt_updates) {
      ns.snt_updates.emplace_back(su.rcvid, su.sntid);
    }
    state.neighbors.push_back(std::move(ns));
  }
  state.pndg.reserve(pndg_.size());
  for (const Pending& p : pndg_) {
    DurableState::PendingState ps;
    ps.requester = p.requester;
    ps.waiting.assign(p.waiting.begin(), p.waiting.end());
    state.pndg.push_back(std::move(ps));
  }
  state.local_tokens = local_tokens_;
  state.ghost_log = log_writes_;
  return state;
}

void LeaseNode::ImportState(const DurableState& state) {
  assert(state.neighbors.size() == per_.size());
  val_ = state.val;
  upcntr_ = state.upcntr;
  for (std::size_t i = 0; i < per_.size(); ++i) {
    const DurableState::NeighborState& ns = state.neighbors[i];
    assert(ns.id == per_[i].id);
    per_[i].taken = ns.taken;
    per_[i].granted = ns.granted;
    per_[i].aval = ns.aval;
    per_[i].uaw.assign(ns.uaw.begin(), ns.uaw.end());
    per_[i].snt_updates.clear();
    per_[i].snt_updates.reserve(ns.snt_updates.size());
    for (const auto& [rcvid, sntid] : ns.snt_updates) {
      per_[i].snt_updates.push_back({rcvid, sntid});
    }
  }
  pndg_.clear();
  pndg_.reserve(state.pndg.size());
  for (const DurableState::PendingState& ps : state.pndg) {
    Pending p;
    p.requester = ps.requester;
    p.waiting.assign(ps.waiting.begin(), ps.waiting.end());
    pndg_.push_back(std::move(p));
  }
  local_tokens_ = state.local_tokens;
  log_writes_ = state.ghost_log;
  last_write_.clear();
  ghost_seen_.clear();
  for (const GhostWrite& gw : log_writes_) {
    last_write_[gw.node] = gw.id;
    ghost_seen_[gw.id] = true;
  }
  ghost_snapshot_.reset();
  PublishSnapshot();
}

std::size_t LeaseNode::Idx(NodeId v) const {
  for (std::size_t i = 0; i < nbrs_.size(); ++i) {
    if (nbrs_[i] == v) return i;
  }
  assert(false && "not a neighbor");
  return 0;
}

bool LeaseNode::IsNbr(NodeId v) const {
  return std::find(nbrs_.begin(), nbrs_.end(), v) != nbrs_.end();
}

bool LeaseNode::GrantedToOtherThan(NodeId w) const {
  for (const PerNeighbor& p : per_) {
    if (p.granted && p.id != w) return true;
  }
  return false;
}

bool LeaseNode::InPndg(NodeId w) const {
  for (const Pending& p : pndg_) {
    if (p.requester == w) return true;
  }
  return false;
}

std::size_t LeaseNode::SntSize(NodeId w) const {
  for (const Pending& p : pndg_) {
    if (p.requester == w) return p.waiting.size();
  }
  return 0;
}

std::vector<NodeId> LeaseNode::Tkn() const {
  std::vector<NodeId> result;
  for (const PerNeighbor& p : per_) {
    if (p.taken) result.push_back(p.id);
  }
  return result;
}

std::vector<NodeId> LeaseNode::Grntd() const {
  std::vector<NodeId> result;
  for (const PerNeighbor& p : per_) {
    if (p.granted) result.push_back(p.id);
  }
  return result;
}

bool LeaseNode::AnyGranted() const {
  for (const PerNeighbor& p : per_) {
    if (p.granted) return true;
  }
  return false;
}

std::size_t LeaseNode::SntUpdatesSize() const {
  std::size_t total = 0;
  for (const PerNeighbor& p : per_) total += p.snt_updates.size();
  return total;
}

Real LeaseNode::Gval() const {
  Real x = val_;
  for (const PerNeighbor& p : per_) x = op_(x, p.aval);
  return x;
}

Real LeaseNode::Subval(NodeId w) const {
  Real x = val_;
  for (const PerNeighbor& p : per_) {
    if (p.id != w) x = op_(x, p.aval);
  }
  return x;
}

bool LeaseNode::AlreadyProbed(NodeId v) const {
  for (const Pending& p : pndg_) {
    if (p.waiting.contains(v)) return true;
  }
  return false;
}

void LeaseNode::Emit(Message m) {
  if (obs_) [[unlikely]] {
    obs_->sent[static_cast<int>(m.type)]->Inc();
    if (m.type == MsgType::kResponse && m.flag) obs_->lease_grants->Inc();
    if (m.type == MsgType::kRelease) obs_->lease_revokes->Inc();
  }
  transport_->Send(std::move(m));
}

// --- Ghost log helpers (Figure 6) -------------------------------------

std::shared_ptr<const GhostLog> LeaseNode::GhostSnapshot() {
  if (!ghost_) return nullptr;
  if (!ghost_snapshot_) {
    ghost_snapshot_ = std::make_shared<const GhostLog>(log_writes_);
  }
  return ghost_snapshot_;
}

void LeaseNode::GhostAppendLocalWrite(ReqId id) {
  if (!ghost_ || id == kNoRequest) return;
  // Idempotent: a write re-applied during crash recovery (the driver
  // re-injects requests whose completion it never saw) keeps its original
  // log position instead of appending a duplicate entry.
  if (ghost_seen_.count(id) != 0) return;
  log_writes_.push_back({id, self_});
  last_write_[self_] = id;
  ghost_seen_[id] = true;
  ghost_snapshot_.reset();
}

void LeaseNode::GhostMerge(const Message& m) {
  if (!ghost_ || m.wlog == nullptr) return;
  // log := log . (wlog_w - log): append unseen writes in order.
  for (const GhostWrite& gw : *m.wlog) {
    if (ghost_seen_.emplace(gw.id, true).second) {
      log_writes_.push_back(gw);
      last_write_[gw.node] = gw.id;
      ghost_snapshot_.reset();
    }
  }
}

// --- Figure 1 procedures ----------------------------------------------

void LeaseNode::SendProbes(NodeId w) {
  // pndg := pndg ∪ {w}; probe all neighbors not taken, not already probed,
  // and not w itself. The caller assigns snt[w] afterwards, exactly as the
  // pseudo-code does.
  if (!InPndg(w)) pndg_.push_back({w, {}});
  for (const PerNeighbor& p : per_) {
    if (p.taken || p.id == w || AlreadyProbed(p.id)) continue;
    Message m;
    m.type = MsgType::kProbe;
    m.from = self_;
    m.to = p.id;
    Emit(std::move(m));
  }
}

void LeaseNode::ForwardUpdates(NodeId w, UpdateId id) {
  for (const PerNeighbor& p : per_) {
    if (!p.granted || p.id == w) continue;
    Message m;
    m.type = MsgType::kUpdate;
    m.from = self_;
    m.to = p.id;
    m.x = Subval(p.id);
    m.id = id;
    m.wlog = GhostSnapshot();
    Emit(std::move(m));
  }
}

void LeaseNode::SendResponse(NodeId w) {
  PerNeighbor& pw = per_[Idx(w)];
  // granted[w] may be set only when every other neighbor's lease is taken
  // (Lemma 3.2 relies on this guard).
  bool all_others_taken = true;
  for (const PerNeighbor& p : per_) {
    if (p.id != w && !p.taken) {
      all_others_taken = false;
      break;
    }
  }
  if (all_others_taken) pw.granted = policy_->SetLease(*this, w);
  Message m;
  m.type = MsgType::kResponse;
  m.from = self_;
  m.to = w;
  m.x = Subval(w);
  m.flag = pw.granted;
  m.wlog = GhostSnapshot();
  Emit(std::move(m));
}

bool LeaseNode::IsGoodForRelease(NodeId w) const {
  return !GrantedToOtherThan(w);
}

void LeaseNode::ForwardRelease() {
  for (PerNeighbor& p : per_) {
    if (!p.taken) continue;
    if (!IsGoodForRelease(p.id)) continue;
    if (!policy_->BreakLease(*this, p.id)) continue;
    p.taken = false;
    Message m;
    m.type = MsgType::kRelease;
    m.from = self_;
    m.to = p.id;
    m.release_ids.assign(p.uaw.begin(), p.uaw.end());
    p.uaw.clear();
    Emit(std::move(m));
  }
}

void LeaseNode::OnRelease(NodeId w, const ReleaseIdSet& s) {
  // Let id be the smallest id in S (S is sorted by construction; guard the
  // degenerate empty-S case, which only exotic policies can produce: it
  // means the releasing node had no unacknowledged updates).
  const bool have_s = !s.empty();
  const UpdateId min_id =
      have_s ? *std::min_element(s.begin(), s.end()) : 0;
  for (PerNeighbor& p : per_) {
    if (!p.taken || p.id == w) continue;  // v ∈ tkn() \ {w}
    if (!have_s) {
      p.uaw.clear();
    } else {
      // A := {α ∈ sntupdates : α.node = v ∧ α.sntid >= min_id};
      // β := the tuple in A with minimum rcvid.
      // The node = v tuples are exactly p.snt_updates, stored with sntid
      // ascending, so A is the suffix found by binary search.
      const auto first = std::lower_bound(
          p.snt_updates.begin(), p.snt_updates.end(), min_id,
          [](const SntUpdate& t, UpdateId id) { return t.sntid < id; });
      const bool found = first != p.snt_updates.end();
      UpdateId beta_rcvid = std::numeric_limits<UpdateId>::max();
      for (auto it = first; it != p.snt_updates.end(); ++it) {
        beta_rcvid = std::min(beta_rcvid, it->rcvid);
      }
      if (!found) {
        // Every update received from v was already propagated and is
        // covered by the release: nothing remains unacknowledged.
        p.uaw.clear();
      } else {
        // uaw[v] := {ids in uaw[v] with id >= β.rcvid}.
        p.uaw.erase(p.uaw.begin(),
                    std::lower_bound(p.uaw.begin(), p.uaw.end(), beta_rcvid));
      }
    }
    if (IsGoodForRelease(p.id)) policy_->OnReleaseTrim(*this, p.id);
  }
  ForwardRelease();
  // Garbage collection (not in the paper, which keeps ghost state forever):
  // once no lease is granted, no further release can arrive, so the
  // sntupdates bookkeeping is dead.
  if (!AnyGranted()) {
    for (PerNeighbor& p : per_) p.snt_updates.clear();
  }
}

// --- Transitions T1..T6 -------------------------------------------------

void LeaseNode::CompleteLocalCombines() {
  const Real value = Gval();
  std::vector<CombineToken> tokens;
  tokens.swap(local_tokens_);
  for (const CombineToken token : tokens) {
    combine_done_(self_, token, value);
  }
}

void LeaseNode::LocalCombine(CombineToken token) {  // T1
  policy_->OnCombine(*this);
  for (PerNeighbor& p : per_) {
    if (p.taken) p.uaw.clear();
  }
  if (!InPndg(self_)) {
    WaitSet missing;  // nbrs() \ tkn(); per_ is ascending, so sorted
    for (const PerNeighbor& p : per_) {
      if (!p.taken) missing.push_back(p.id);
    }
    if (missing.empty()) {
      // return gval(): completes immediately. No other combine can be
      // waiting, because waiting tokens imply self ∈ pndg.
      assert(local_tokens_.empty());
      combine_done_(self_, token, Gval());
    } else {
      local_tokens_.push_back(token);
      SendProbes(self_);
      for (Pending& p : pndg_) {
        if (p.requester == self_) {
          p.waiting = std::move(missing);
          break;
        }
      }
    }
  } else {
    // A combine is already in flight at this node; piggyback on it.
    local_tokens_.push_back(token);
  }
  PublishSnapshot();
}

void LeaseNode::LocalWrite(Real arg, ReqId write_id) {  // T2
  val_ = arg;
  GhostAppendLocalWrite(write_id);
  policy_->OnLocalWrite(*this);
  bool any_granted = false;
  for (const PerNeighbor& p : per_) any_granted |= p.granted;
  if (any_granted) {
    const UpdateId id = NewId();
    ForwardUpdates(self_, id);
  }
  PublishSnapshot();
}

void LeaseNode::Deliver(const Message& m) {
  assert(m.to == self_);
  assert(IsNbr(m.from));
  if (obs_) [[unlikely]] {
    obs_->recv[static_cast<int>(m.type)]->Inc();
  }
  const NodeId w = m.from;
  switch (m.type) {
    case MsgType::kProbe: {  // T3
      policy_->OnProbeReceived(*this, w);
      for (PerNeighbor& p : per_) {
        if (p.taken && p.id != w) p.uaw.clear();
      }
      if (!InPndg(w)) {
        WaitSet missing;  // nbrs() \ {tkn() ∪ {w}}; sorted by construction
        for (const PerNeighbor& p : per_) {
          if (!p.taken && p.id != w) missing.push_back(p.id);
        }
        if (missing.empty()) {
          SendResponse(w);
        } else {
          SendProbes(w);
          for (Pending& p : pndg_) {
            if (p.requester == w) {
              p.waiting = std::move(missing);
              break;
            }
          }
        }
      }
      break;
    }
    case MsgType::kResponse: {  // T4
      policy_->OnResponseReceived(*this, m.flag, w);
      per_[Idx(w)].aval = m.x;
      GhostMerge(m);
      per_[Idx(w)].taken = m.flag;
      // foreach v in pndg: snt[v] -= {w}; completed entries fire in order.
      SmallVec<NodeId, 8> completed;
      for (Pending& p : pndg_) {
        p.waiting.EraseSorted(w);
        if (p.waiting.empty()) completed.push_back(p.requester);
      }
      std::erase_if(pndg_, [](const Pending& p) { return p.waiting.empty(); });
      for (const NodeId v : completed) {
        if (v == self_) {
          CompleteLocalCombines();
        } else {
          SendResponse(v);
        }
      }
      break;
    }
    case MsgType::kUpdate: {  // T5
      policy_->OnUpdateReceived(*this, w);
      per_[Idx(w)].aval = m.x;
      GhostMerge(m);
      per_[Idx(w)].uaw.InsertSorted(m.id);
      if (GrantedToOtherThan(w)) {
        const UpdateId nid = NewId();
        per_[Idx(w)].snt_updates.push_back({m.id, nid});
        ForwardUpdates(w, nid);
      } else {
        ForwardRelease();
      }
      break;
    }
    case MsgType::kRelease: {  // T6
      policy_->OnReleaseReceived(*this, w);
      per_[Idx(w)].granted = false;
      OnRelease(w, m.release_ids);
      break;
    }
  }
  PublishSnapshot();
}

}  // namespace treeagg
