// Additional lease policies beyond the paper's RWW/(a,b) family.
//
// These serve two purposes:
//  * they exercise the paper's policy-independent claims (strict and causal
//    consistency hold for ANY policy plugged into the Figure 1 mechanism),
//    including randomized and stateful policies; and
//  * they provide practitioner-style baselines for the ablation benches:
//    how close does the theory-backed RWW get to a tuned heuristic?
//
//  TimerLeasePolicy  — Gray & Cheriton-style time-based leases (related
//                      work [13] in the paper): a taken lease is released
//                      at the first opportunity after `ttl` protocol events
//                      have been observed at the node since it was taken,
//                      regardless of read activity.
//  ProbabilisticPolicy — grants always; breaks each lease independently
//                      with probability p at every release opportunity.
//                      (Seeded; deterministic per construction.)
//  EwmaPolicy        — adaptive heuristic: tracks exponentially weighted
//                      read and write rates per neighbor direction and
//                      keeps the lease iff reads outweigh writes.
#ifndef TREEAGG_CORE_EXTRA_POLICIES_H_
#define TREEAGG_CORE_EXTRA_POLICIES_H_

#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "core/policies.h"  // NamedPolicy
#include "core/policy.h"

namespace treeagg {

// Grants eagerly and releases at the first opportunity. Pathological on
// purpose: it exhibits the noop-with-release row of Figure 2 (which RWW
// itself never produces, Lemma 4.1) and stresses the mechanism's release
// bookkeeping, including empty release sets.
class EagerBreakPolicy final : public LeasePolicy {
 public:
  bool SetLease(const LeaseNodeView&, NodeId) override { return true; }
  bool BreakLease(const LeaseNodeView&, NodeId) override { return true; }
  std::string name() const override { return "eager-break"; }
};

class TimerLeasePolicy final : public LeasePolicy {
 public:
  explicit TimerLeasePolicy(int ttl);

  void OnCombine(const LeaseNodeView& node) override;
  void OnProbeReceived(const LeaseNodeView& node, NodeId w) override;
  void OnResponseReceived(const LeaseNodeView& node, bool flag,
                          NodeId w) override;
  void OnUpdateReceived(const LeaseNodeView& node, NodeId w) override;
  void OnReleaseReceived(const LeaseNodeView& node, NodeId w) override;
  bool SetLease(const LeaseNodeView& node, NodeId w) override;
  bool BreakLease(const LeaseNodeView& node, NodeId v) override;
  std::string name() const override;

 private:
  void Tick();

  const int ttl_;
  long clock_ = 0;  // local event counter (a logical clock)
  std::unordered_map<NodeId, long> taken_at_;
};

class ProbabilisticPolicy final : public LeasePolicy {
 public:
  ProbabilisticPolicy(double break_probability, std::uint64_t seed);

  bool SetLease(const LeaseNodeView& node, NodeId w) override;
  bool BreakLease(const LeaseNodeView& node, NodeId v) override;
  std::string name() const override;

 private:
  const double p_;
  Rng rng_;
};

class EwmaPolicy final : public LeasePolicy {
 public:
  explicit EwmaPolicy(double alpha = 0.2);

  void OnCombine(const LeaseNodeView& node) override;
  void OnProbeReceived(const LeaseNodeView& node, NodeId w) override;
  void OnUpdateReceived(const LeaseNodeView& node, NodeId w) override;
  void OnLocalWrite(const LeaseNodeView& node) override;
  bool SetLease(const LeaseNodeView& node, NodeId w) override;
  bool BreakLease(const LeaseNodeView& node, NodeId v) override;
  std::string name() const override;

  double ReadRate(NodeId v) const;
  double WriteRate(NodeId v) const;

 private:
  struct Rates {
    double reads = 0;
    double writes = 0;
  };
  void Bump(NodeId v, bool is_read);

  const double alpha_;
  std::unordered_map<NodeId, Rates> rates_;
};

PolicyFactory EagerBreakFactory();
PolicyFactory TimerLeaseFactory(int ttl);
PolicyFactory ProbabilisticFactory(double break_probability,
                                   std::uint64_t seed);
PolicyFactory EwmaFactory(double alpha = 0.2);

// Extended sweep: StandardPolicies() plus the policies above.
std::vector<NamedPolicy> AllPolicies();

// Parses a policy spec: any AllPolicies() name, or the parameterized forms
// "lease(a,b)", "timer(k)", "prob(p)", "ewma(alpha)", and the MLAP family
// "mlap", "mlap(c)", "mlap-d", "mlap-d(c)" (which validate the spec and
// return the RWW mechanism factory — see core/mlap.h for why). Throws
// std::invalid_argument on an unknown spec.
PolicyFactory PolicyBySpec(const std::string& spec);

// The accepted spec forms, comma-separated, for CLI error messages.
std::string PolicySpecHelp();

}  // namespace treeagg

#endif  // TREEAGG_CORE_EXTRA_POLICIES_H_
