#include "core/aggregate_op.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace treeagg {

const AggregateOp& SumOp() {
  static const AggregateOp kOp{"sum", 0.0,
                               [](Real a, Real b) { return a + b; }};
  return kOp;
}

const AggregateOp& MinOp() {
  static const AggregateOp kOp{"min", std::numeric_limits<Real>::infinity(),
                               [](Real a, Real b) { return std::min(a, b); }};
  return kOp;
}

const AggregateOp& MaxOp() {
  static const AggregateOp kOp{"max", -std::numeric_limits<Real>::infinity(),
                               [](Real a, Real b) { return std::max(a, b); }};
  return kOp;
}

const AggregateOp& BoolOrOp() {
  static const AggregateOp kOp{
      "or", 0.0,
      [](Real a, Real b) { return (a != 0.0 || b != 0.0) ? 1.0 : 0.0; }};
  return kOp;
}

const AggregateOp& OpByName(const std::string& name) {
  if (name == "sum") return SumOp();
  if (name == "min") return MinOp();
  if (name == "max") return MaxOp();
  if (name == "or") return BoolOrOp();
  throw std::invalid_argument("OpByName: unknown operator " + name);
}

}  // namespace treeagg
