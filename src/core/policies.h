// Concrete lease policies.
//
//  * RwwPolicy — the paper's online algorithm RWW (Figure 3, reconstructed
//    from the invariant I4 of Lemma 4.2): set the lease whenever asked;
//    maintain a per-neighbor lease timer lt[v] that is reset to 2 by any
//    combine activity and decremented by writes; break after two
//    consecutive writes (lt[v] <= 0).
//  * AbPolicy — the (a, b)-algorithm class of Section 4.2: set the lease
//    after `a` consecutive combine requests in sigma(u, v), break it after
//    `b` consecutive write requests. AbPolicy(1, 2) behaves exactly like
//    RWW. For a > 1 the policy counts probes, which matches the paper's
//    definition exactly on two-node trees (the Theorem 3 setting) and is a
//    best-effort approximation on larger trees, where interior nodes
//    cannot observe writes occurring below unleased subtrees.
//  * PushAllPolicy — Astrolabe-like static strategy: always grant, never
//    break. After a warm-up combine per node, every write is propagated to
//    all nodes and every read is local.
//  * PullAllPolicy — MDS-2-like static strategy: never grant. Every combine
//    gathers the whole tree; writes cost nothing.
#ifndef TREEAGG_CORE_POLICIES_H_
#define TREEAGG_CORE_POLICIES_H_

#include <string>
#include <vector>

#include "common/small_vec.h"
#include "core/policy.h"

namespace treeagg {

// Per-neighbor integer counters, stored flat. A node has few neighbors and
// policies touch a counter on (almost) every delivered message, so the
// previous std::unordered_map<NodeId, int> was a measured hot spot of the
// sequential driver; a linear scan over an inline array is both smaller
// and faster at every realistic degree. Semantics match operator[] of the
// map it replaces: first touch default-initializes to 0.
class NeighborCounterMap {
 public:
  struct Entry {
    NodeId key;
    int value;
  };

  int& operator[](NodeId v) {
    for (Entry& e : entries_) {
      if (e.key == v) return e.value;
    }
    entries_.push_back({v, 0});
    return entries_.back().value;
  }

  // Returns nullptr when v was never touched (the map's find() == end()).
  const Entry* Find(NodeId v) const {
    for (const Entry& e : entries_) {
      if (e.key == v) return &e;
    }
    return nullptr;
  }

  Entry* begin() { return entries_.begin(); }
  Entry* end() { return entries_.end(); }
  const Entry* begin() const { return entries_.begin(); }
  const Entry* end() const { return entries_.end(); }

 private:
  SmallVec<Entry, 8> entries_;
};

class RwwPolicy final : public LeasePolicy {
 public:
  RwwPolicy() = default;

  void OnCombine(const LeaseNodeView& node) override;
  void OnProbeReceived(const LeaseNodeView& node, NodeId w) override;
  void OnResponseReceived(const LeaseNodeView& node, bool flag,
                          NodeId w) override;
  void OnUpdateReceived(const LeaseNodeView& node, NodeId w) override;
  void OnReleaseTrim(const LeaseNodeView& node, NodeId v) override;
  bool SetLease(const LeaseNodeView& node, NodeId w) override;
  bool BreakLease(const LeaseNodeView& node, NodeId v) override;
  std::string name() const override { return "RWW"; }

  // The lease timer for neighbor v (test/diagnostic accessor; the paper's
  // u.lt[v] from Lemma 4.2).
  int lt(NodeId v) const;

 private:
  NeighborCounterMap lt_;
};

class AbPolicy final : public LeasePolicy {
 public:
  AbPolicy(int a, int b);

  void OnCombine(const LeaseNodeView& node) override;
  void OnProbeReceived(const LeaseNodeView& node, NodeId w) override;
  void OnResponseReceived(const LeaseNodeView& node, bool flag,
                          NodeId w) override;
  void OnUpdateReceived(const LeaseNodeView& node, NodeId w) override;
  void OnReleaseTrim(const LeaseNodeView& node, NodeId v) override;
  void OnLocalWrite(const LeaseNodeView& node) override;
  bool SetLease(const LeaseNodeView& node, NodeId w) override;
  bool BreakLease(const LeaseNodeView& node, NodeId v) override;
  std::string name() const override;

  int lt(NodeId v) const;

 private:
  const int a_;
  const int b_;
  NeighborCounterMap lt_;  // remaining writes before break
  NeighborCounterMap cc_;  // consecutive probes seen from w
};

class PushAllPolicy final : public LeasePolicy {
 public:
  bool SetLease(const LeaseNodeView&, NodeId) override { return true; }
  bool BreakLease(const LeaseNodeView&, NodeId) override { return false; }
  std::string name() const override { return "push-all"; }
};

class PullAllPolicy final : public LeasePolicy {
 public:
  bool SetLease(const LeaseNodeView&, NodeId) override { return false; }
  bool BreakLease(const LeaseNodeView&, NodeId) override { return true; }
  std::string name() const override { return "pull-all"; }
};

// Policy factories for drivers.
PolicyFactory RwwFactory();
PolicyFactory AbFactory(int a, int b);
PolicyFactory PushAllFactory();
PolicyFactory PullAllFactory();

struct NamedPolicy {
  std::string name;
  PolicyFactory factory;
};

// The standard policy sweep used by tests and benches: RWW, (1,1), (1,3),
// (2,2), push-all, pull-all.
std::vector<NamedPolicy> StandardPolicies();

}  // namespace treeagg

#endif  // TREEAGG_CORE_POLICIES_H_
