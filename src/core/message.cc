#include "core/message.h"

#include <ostream>

namespace treeagg {

const char* ToString(MsgType t) {
  switch (t) {
    case MsgType::kProbe:
      return "probe";
    case MsgType::kResponse:
      return "response";
    case MsgType::kUpdate:
      return "update";
    case MsgType::kRelease:
      return "release";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Message& m) {
  os << ToString(m.type) << "(" << m.from << "->" << m.to;
  switch (m.type) {
    case MsgType::kResponse:
      os << ", x=" << m.x << ", flag=" << (m.flag ? "true" : "false");
      break;
    case MsgType::kUpdate:
      os << ", x=" << m.x << ", id=" << m.id;
      break;
    case MsgType::kRelease:
      os << ", |S|=" << m.release_ids.size();
      break;
    case MsgType::kProbe:
      break;
  }
  return os << ")";
}

}  // namespace treeagg
