// SmallVec<T, N>: a contiguous sequence with inline storage for the first
// N elements — the protocol's small-buffer optimization.
//
// Protocol messages carry tiny id sets (a release's uaw set S is almost
// always <= 4 ids) and nodes track tiny per-neighbor sets, so the hot path
// of the sequential driver used to be dominated by std::vector / std::set
// heap churn. SmallVec keeps the common case allocation-free and falls
// back to the heap only beyond N elements.
//
// Restricted to trivially copyable T (NodeId, UpdateId, ...): growth is a
// memcpy and no destructors ever run, which keeps moves O(N) worst-case
// and branch-light.
#ifndef TREEAGG_COMMON_SMALL_VEC_H_
#define TREEAGG_COMMON_SMALL_VEC_H_

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>

namespace treeagg {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialized for trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() : data_(inline_data()), size_(0), capacity_(N) {}

  SmallVec(std::initializer_list<T> init) : SmallVec() {
    assign(init.begin(), init.end());
  }

  SmallVec(const SmallVec& other) : SmallVec() {
    assign(other.begin(), other.end());
  }

  SmallVec(SmallVec&& other) noexcept : SmallVec() { MoveFrom(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~SmallVec() {
    if (data_ != inline_data()) std::free(data_);
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void reserve(std::size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(T value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data_[size_++] = value;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  template <typename It>
  void assign(It first, It last) {
    size_ = 0;
    for (; first != last; ++first) push_back(*first);
  }

  iterator insert(iterator pos, T value) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    if (size_ == capacity_) Grow(capacity_ * 2);
    std::memmove(data_ + at + 1, data_ + at, (size_ - at) * sizeof(T));
    data_[at] = value;
    ++size_;
    return data_ + at;
  }

  iterator erase(iterator pos) { return erase(pos, pos + 1); }

  iterator erase(iterator first, iterator last) {
    const std::size_t at = static_cast<std::size_t>(first - data_);
    const std::size_t count = static_cast<std::size_t>(last - first);
    std::memmove(first, last, (size_ - at - count) * sizeof(T));
    size_ -= count;
    return data_ + at;
  }

  // Set-style helpers for sorted contents (uaw sets, pending-probe sets).
  bool contains(T value) const {
    return std::binary_search(begin(), end(), value);
  }

  // Inserts into sorted position unless already present. The common case —
  // monotonically increasing ids — appends without a search.
  void InsertSorted(T value) {
    if (empty() || back() < value) {
      push_back(value);
      return;
    }
    iterator pos = std::lower_bound(begin(), end(), value);
    if (pos != end() && *pos == value) return;
    insert(pos, value);
  }

  // Removes value if present; returns whether it was.
  bool EraseSorted(T value) {
    iterator pos = std::lower_bound(begin(), end(), value);
    if (pos == end() || *pos != value) return false;
    erase(pos);
    return true;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_); }
  const T* inline_data() const { return reinterpret_cast<const T*>(inline_); }

  void Grow(std::size_t n) {
    if (n < size_ + 1) n = size_ + 1;
    T* fresh = static_cast<T*>(std::malloc(n * sizeof(T)));
    if (fresh == nullptr) throw std::bad_alloc();
    std::memcpy(fresh, data_, size_ * sizeof(T));
    if (data_ != inline_data()) std::free(data_);
    data_ = fresh;
    capacity_ = n;
  }

  void MoveFrom(SmallVec& other) noexcept {
    if (other.data_ != other.inline_data()) {
      // Steal the heap buffer.
      if (data_ != inline_data()) std::free(data_);
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      // other.size_ <= N <= capacity_: inline contents always fit.
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  T* data_;
  std::size_t size_;
  std::size_t capacity_;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace treeagg

#endif  // TREEAGG_COMMON_SMALL_VEC_H_
