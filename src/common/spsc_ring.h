// Unbounded single-producer / single-consumer handoff queue for the
// multi-reactor daemon: reactor threads exchange decoded WireFrames with
// the primary poll loop through these instead of a loopback socket.
//
// Shape: a Michael–Scott-style linked list specialized to one producer and
// one consumer. The producer owns `tail_` and allocates nodes; the
// consumer owns `head_` (a dummy node sitting just before the first
// unconsumed element) and frees nodes as it advances. The only shared
// edges are each node's `next` pointer (written once by the producer with
// release, read by the consumer with acquire — this pairing is what makes
// the payload of a popped element visible to the consumer without locks)
// and an approximate size counter used for quiescence accounting and
// wake-up hints.
//
// Unbounded on purpose: a bounded ring would add a producer-blocks-on-full
// edge to the daemon's wait graph (primary waiting on a worker that is
// waiting on the primary's ring space), and the queues hold decoded
// protocol messages whose volume is already bounded by the workload the
// driver has in flight.
//
// SnapshotUnconsumed() walks the unconsumed suffix WITHOUT popping. That
// is only safe when neither side is running — the daemon calls it under
// its pause barrier (disk snapshots capture in-flight intra-daemon
// messages as local-queue entries) and after worker threads have joined.
#ifndef TREEAGG_COMMON_SPSC_RING_H_
#define TREEAGG_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <utility>

namespace treeagg {

template <typename T>
class SpscRing {
 public:
  SpscRing() {
    Node* dummy = new Node();
    head_.store(dummy, std::memory_order_relaxed);
    tail_ = dummy;
  }

  ~SpscRing() {
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns true when the queue was (approximately) empty
  // before this push — the hint callers use to skip redundant wake-ups.
  bool Push(T value) {
    Node* n = new Node();
    n->value = std::move(value);
    const bool was_empty =
        size_.fetch_add(1, std::memory_order_acq_rel) == 0;
    tail_->next.store(n, std::memory_order_release);
    tail_ = n;
    return was_empty;
  }

  // Consumer side. False when no element is ready. (The size counter is
  // incremented before the node is linked, so a reader racing a push may
  // see SizeApprox() > 0 while Pop() still returns false; callers always
  // pair Pop loops with an eventfd/pipe wake-up or a timeout.)
  bool Pop(T* out) {
    Node* head = head_.load(std::memory_order_relaxed);
    Node* next = head->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    *out = std::move(next->value);
    head_.store(next, std::memory_order_release);
    delete head;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  // Approximate element count; exact whenever both sides are quiescent.
  std::size_t SizeApprox() const {
    return size_.load(std::memory_order_relaxed);
  }

  // Copies every unconsumed element, oldest first, without consuming.
  // Requires both sides quiescent (pause barrier or joined threads).
  template <typename Fn>
  void SnapshotUnconsumed(Fn&& fn) const {
    Node* n = head_.load(std::memory_order_acquire);
    for (n = n->next.load(std::memory_order_acquire); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      fn(static_cast<const T&>(n->value));
    }
  }

 private:
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  std::atomic<Node*> head_;  // consumer-owned dummy before first element
  Node* tail_;               // producer-owned
  std::atomic<std::size_t> size_{0};
};

}  // namespace treeagg

#endif  // TREEAGG_COMMON_SPSC_RING_H_
