// Core scalar types shared across the treeagg library.
//
// The paper ("Online Aggregation over Trees", Plaxton/Tiwari/Yalagandula,
// IPDPS 2007) models a tree of machines with real-valued local values and a
// commutative, associative aggregation operator with an identity element.
// NodeId indexes nodes of a Tree; Real is the value domain.
#ifndef TREEAGG_COMMON_TYPES_H_
#define TREEAGG_COMMON_TYPES_H_

#include <cstdint>

namespace treeagg {

// Node identifier: dense index in [0, Tree::size()).
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

// The value domain of the aggregation operator.
using Real = double;

// Globally unique id of a request in an execution history (order of
// initiation). Used by the consistency checkers and the ghost logs of
// Section 5 of the paper.
using ReqId = std::int64_t;
inline constexpr ReqId kNoRequest = -1;

// Identifier of an update message (the paper's `upcntr`-generated ids).
// Ids are per-sender monotone; pairs (sender, counter) are globally unique
// but the mechanism only ever compares ids from the same sender.
using UpdateId = std::int64_t;

}  // namespace treeagg

#endif  // TREEAGG_COMMON_TYPES_H_
