// RingQueue<T>: a FIFO over a power-of-two ring of reusable slots.
//
// The sequential driver's message queue cycles through millions of
// push/pop pairs per run. std::deque churns through chunk allocations and
// destroys every popped element; a ring instead *recycles* slots — a
// popped Message's storage (including any heap buffer its SmallVec ever
// grew) is move-assigned over by a later push, so steady-state traffic
// performs no allocation at all.
#ifndef TREEAGG_COMMON_RING_QUEUE_H_
#define TREEAGG_COMMON_RING_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace treeagg {

template <typename T>
class RingQueue {
 public:
  explicit RingQueue(std::size_t initial_capacity = 64)
      : buf_(RoundUp(initial_capacity)) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void Push(T&& value) {
    if (size_ == buf_.size()) Grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
    ++size_;
  }

  T& Front() {
    assert(size_ > 0);
    return buf_[head_];
  }

  // Moves the front element out into `out` (recycling both buffers) and
  // advances the queue.
  void PopInto(T& out) {
    assert(size_ > 0);
    out = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static std::size_t RoundUp(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void Grow() {
    std::vector<T> bigger(buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace treeagg

#endif  // TREEAGG_COMMON_RING_QUEUE_H_
