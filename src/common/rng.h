// Deterministic pseudo-random number generation for workloads and the
// concurrent simulator. All randomness in the repository flows through a
// seeded Rng so every experiment is reproducible from its printed seed.
#ifndef TREEAGG_COMMON_RNG_H_
#define TREEAGG_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <limits>

namespace treeagg {

// A small, fast, high-quality PRNG (xoshiro256**). We avoid <random> engines
// for cross-platform determinism: std::mt19937 is deterministic but the
// distributions are not; we implement the few distributions we need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform real in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace treeagg

#endif  // TREEAGG_COMMON_RNG_H_
