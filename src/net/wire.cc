#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace treeagg {
namespace {

// --- little-endian primitives ------------------------------------------

void PutU8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutI32(std::vector<std::uint8_t>* out, std::int32_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
}

void PutI64(std::vector<std::uint8_t>* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutF64(std::vector<std::uint8_t>* out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Bounds-checked cursor over the frame payload. Every Get* reports
// underrun through ok(); decoding continues harmlessly (zeros) and the
// caller maps !ok() to kBadPayload.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return len_ - pos_; }

  std::uint8_t GetU8() {
    if (remaining() < 1) return Fail<std::uint8_t>();
    return data_[pos_++];
  }

  std::uint32_t GetU32() {
    if (remaining() < 4) return Fail<std::uint32_t>();
    std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                      static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                      static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                      static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t GetU64() {
    const std::uint64_t lo = GetU32();
    const std::uint64_t hi = GetU32();
    return lo | hi << 32;
  }

  std::int32_t GetI32() { return static_cast<std::int32_t>(GetU32()); }
  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  double GetF64() {
    const std::uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // A count followed by `count * elem_size` bytes: rejects counts that the
  // remaining payload cannot possibly hold, so a corrupted count can never
  // drive a giant reserve() or a long copy loop.
  std::uint32_t GetCount(std::size_t elem_size) {
    const std::uint32_t n = GetU32();
    if (!ok_ || static_cast<std::uint64_t>(n) * elem_size > remaining()) {
      return Fail<std::uint32_t>();
    }
    return n;
  }

  // Bulk copy for opaque byte blobs (migration state).
  bool GetBytes(std::uint8_t* dst, std::size_t n) {
    if (remaining() < n) {
      Fail<std::uint8_t>();
      return false;
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    pos_ = len_;  // park at the end: later reads keep failing
    return T{};
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- payload encoders ---------------------------------------------------

void EncodeMessage(std::vector<std::uint8_t>* out, const Message& m) {
  PutU8(out, static_cast<std::uint8_t>(m.type));
  PutI32(out, m.from);
  PutI32(out, m.to);
  PutF64(out, m.x);
  PutU8(out, m.flag ? 1 : 0);
  PutI64(out, m.id);
  PutU32(out, static_cast<std::uint32_t>(m.release_ids.size()));
  for (const UpdateId id : m.release_ids) PutI64(out, id);
  PutU8(out, m.wlog ? 1 : 0);
  if (m.wlog) {
    PutU32(out, static_cast<std::uint32_t>(m.wlog->size()));
    for (const GhostWrite& w : *m.wlog) {
      PutI64(out, w.id);
      PutI32(out, w.node);
    }
  }
}

bool DecodeMessage(Cursor* c, Message* m) {
  const std::uint8_t type = c->GetU8();
  if (!c->ok() || type > static_cast<std::uint8_t>(MsgType::kRelease)) {
    return false;
  }
  m->type = static_cast<MsgType>(type);
  m->from = c->GetI32();
  m->to = c->GetI32();
  m->x = c->GetF64();
  const std::uint8_t flag = c->GetU8();
  if (!c->ok() || flag > 1) return false;
  m->flag = flag != 0;
  m->id = c->GetI64();
  const std::uint32_t nrelease = c->GetCount(8);
  if (!c->ok()) return false;
  m->release_ids.clear();
  for (std::uint32_t i = 0; i < nrelease; ++i) {
    m->release_ids.push_back(c->GetI64());
  }
  const std::uint8_t has_wlog = c->GetU8();
  if (!c->ok() || has_wlog > 1) return false;
  m->wlog.reset();
  if (has_wlog) {
    const std::uint32_t nwlog = c->GetCount(12);
    if (!c->ok()) return false;
    auto log = std::make_shared<GhostLog>();
    log->reserve(nwlog);
    for (std::uint32_t i = 0; i < nwlog; ++i) {
      GhostWrite w;
      w.id = c->GetI64();
      w.node = c->GetI32();
      log->push_back(w);
    }
    m->wlog = std::move(log);
  }
  return c->ok();
}

void EncodePayload(std::vector<std::uint8_t>* out, const WireFrame& f,
                   std::uint8_t version) {
  switch (f.type) {
    case FrameType::kPeerHello:
      PutU32(out, f.daemon_id);
      PutU64(out, f.resume);
      if (version >= 3) PutU64(out, f.ack);  // v2 hellos carry no ack
      break;
    case FrameType::kPeerAck:
      PutU64(out, f.ack);
      break;
    case FrameType::kDriverHello:
    case FrameType::kHarvestReq:
    case FrameType::kShutdown:
      break;  // no payload
    case FrameType::kProtocol:
      EncodeMessage(out, f.msg);
      break;
    case FrameType::kBatch:
      PutU32(out, static_cast<std::uint32_t>(f.batch.size()));
      for (const Message& m : f.batch) EncodeMessage(out, m);
      break;
    case FrameType::kInjectWrite:
      PutI64(out, f.req);
      PutI32(out, f.node);
      PutF64(out, f.arg);
      break;
    case FrameType::kInjectCombine:
      PutI64(out, f.req);
      PutI32(out, f.node);
      break;
    case FrameType::kWriteDone:
      PutI64(out, f.req);
      break;
    case FrameType::kCombineDone:
      PutI64(out, f.req);
      PutF64(out, f.value);
      PutU32(out, static_cast<std::uint32_t>(f.gather.size()));
      for (const auto& [node, id] : f.gather) {
        PutI32(out, node);
        PutI64(out, id);
      }
      PutI64(out, f.log_prefix);
      break;
    case FrameType::kQuery:
      PutI64(out, f.req);
      PutI32(out, f.node);
      break;
    case FrameType::kQueryResp:
      PutI64(out, f.req);
      PutI32(out, f.node);
      PutU64(out, f.epoch);
      PutF64(out, f.value);
      PutI64(out, f.log_prefix);
      break;
    case FrameType::kStatusReq:
      PutU64(out, f.status.probe);
      break;
    case FrameType::kStatusResp:
      PutU64(out, f.status.probe);
      PutU64(out, f.status.sent);
      PutU64(out, f.status.received);
      PutU64(out, f.status.queued);
      break;
    case FrameType::kTrafficReq:
    case FrameType::kMigrateDone:
      PutI64(out, f.req);
      break;
    case FrameType::kTrafficResp:
      PutI64(out, f.req);
      PutU32(out, static_cast<std::uint32_t>(f.traffic.size()));
      for (const auto& [node, count] : f.traffic) {
        PutI32(out, node);
        PutU64(out, count);
      }
      break;
    case FrameType::kMigrateOut:
      PutI64(out, f.req);
      PutI32(out, f.node);
      break;
    case FrameType::kMigrateState:
      PutI64(out, f.req);
      PutI32(out, f.node);
      PutU64(out, f.resume);  // hosted flag
      PutU64(out, f.epoch);
      PutU32(out, static_cast<std::uint32_t>(f.blob.size()));
      out->insert(out->end(), f.blob.begin(), f.blob.end());
      break;
    case FrameType::kMigrateIn:
      PutI64(out, f.req);
      PutI32(out, f.node);
      PutU64(out, f.epoch);
      PutU32(out, static_cast<std::uint32_t>(f.blob.size()));
      out->insert(out->end(), f.blob.begin(), f.blob.end());
      break;
    case FrameType::kMigrateCommit:
      PutI64(out, f.req);
      PutI32(out, f.node);
      PutU32(out, f.daemon_id);
      break;
    case FrameType::kPlacementUpdate:
      PutI64(out, f.req);
      PutU32(out, static_cast<std::uint32_t>(f.moves.size()));
      for (const auto& [node, daemon] : f.moves) {
        PutI32(out, node);
        PutI32(out, daemon);
      }
      break;
    case FrameType::kHarvestResp:
      PutU32(out, static_cast<std::uint32_t>(f.harvest.logs.size()));
      for (const NodeLogPayload& nl : f.harvest.logs) {
        PutI32(out, nl.node);
        PutU32(out, static_cast<std::uint32_t>(nl.log.size()));
        for (const GhostWrite& w : nl.log) {
          PutI64(out, w.id);
          PutI32(out, w.node);
        }
      }
      PutI64(out, f.harvest.counts.probes);
      PutI64(out, f.harvest.counts.responses);
      PutI64(out, f.harvest.counts.updates);
      PutI64(out, f.harvest.counts.releases);
      break;
  }
}

bool DecodePayload(Cursor* c, WireFrame* f, std::uint8_t version) {
  switch (f->type) {
    case FrameType::kPeerHello:
      f->daemon_id = c->GetU32();
      f->resume = c->GetU64();
      if (version >= 3) {
        f->ack = c->GetU64();
        f->ack_valid = true;
      }
      break;
    case FrameType::kPeerAck:
      f->ack = c->GetU64();
      f->ack_valid = true;
      break;
    case FrameType::kDriverHello:
    case FrameType::kHarvestReq:
    case FrameType::kShutdown:
      break;
    case FrameType::kProtocol:
      if (!DecodeMessage(c, &f->msg)) return false;
      break;
    case FrameType::kBatch: {
      // The smallest encodable message is 31 bytes (fixed fields, empty
      // release list, no wlog), which bounds a corrupted count the same
      // way GetCount bounds array counts elsewhere.
      const std::uint32_t n = c->GetCount(31);
      if (!c->ok()) return false;
      f->batch.clear();
      f->batch.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        Message m;
        if (!DecodeMessage(c, &m)) return false;
        f->batch.push_back(std::move(m));
      }
      break;
    }
    case FrameType::kInjectWrite:
      f->req = c->GetI64();
      f->node = c->GetI32();
      f->arg = c->GetF64();
      break;
    case FrameType::kInjectCombine:
      f->req = c->GetI64();
      f->node = c->GetI32();
      break;
    case FrameType::kWriteDone:
      f->req = c->GetI64();
      break;
    case FrameType::kCombineDone: {
      f->req = c->GetI64();
      f->value = c->GetF64();
      const std::uint32_t n = c->GetCount(12);
      if (!c->ok()) return false;
      f->gather.clear();
      f->gather.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const NodeId node = c->GetI32();
        const ReqId id = c->GetI64();
        f->gather.emplace_back(node, id);
      }
      f->log_prefix = c->GetI64();
      break;
    }
    case FrameType::kQuery:
      f->req = c->GetI64();
      f->node = c->GetI32();
      break;
    case FrameType::kQueryResp:
      f->req = c->GetI64();
      f->node = c->GetI32();
      f->epoch = c->GetU64();
      f->value = c->GetF64();
      f->log_prefix = c->GetI64();
      break;
    case FrameType::kStatusReq:
      f->status.probe = c->GetU64();
      break;
    case FrameType::kStatusResp:
      f->status.probe = c->GetU64();
      f->status.sent = c->GetU64();
      f->status.received = c->GetU64();
      f->status.queued = c->GetU64();
      break;
    case FrameType::kTrafficReq:
    case FrameType::kMigrateDone:
      f->req = c->GetI64();
      break;
    case FrameType::kTrafficResp: {
      f->req = c->GetI64();
      const std::uint32_t n = c->GetCount(12);
      if (!c->ok()) return false;
      f->traffic.clear();
      f->traffic.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const NodeId node = c->GetI32();
        const std::uint64_t count = c->GetU64();
        f->traffic.emplace_back(node, count);
      }
      break;
    }
    case FrameType::kMigrateOut:
      f->req = c->GetI64();
      f->node = c->GetI32();
      break;
    case FrameType::kMigrateState: {
      f->req = c->GetI64();
      f->node = c->GetI32();
      f->resume = c->GetU64();
      f->epoch = c->GetU64();
      const std::uint32_t n = c->GetCount(1);
      if (!c->ok()) return false;
      f->blob.resize(n);
      if (!c->GetBytes(f->blob.data(), n)) return false;
      break;
    }
    case FrameType::kMigrateIn: {
      f->req = c->GetI64();
      f->node = c->GetI32();
      f->epoch = c->GetU64();
      const std::uint32_t n = c->GetCount(1);
      if (!c->ok()) return false;
      f->blob.resize(n);
      if (!c->GetBytes(f->blob.data(), n)) return false;
      break;
    }
    case FrameType::kMigrateCommit:
      f->req = c->GetI64();
      f->node = c->GetI32();
      f->daemon_id = c->GetU32();
      break;
    case FrameType::kPlacementUpdate: {
      f->req = c->GetI64();
      const std::uint32_t n = c->GetCount(8);
      if (!c->ok()) return false;
      f->moves.clear();
      f->moves.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const NodeId node = c->GetI32();
        const std::int32_t daemon = c->GetI32();
        f->moves.emplace_back(node, daemon);
      }
      break;
    }
    case FrameType::kHarvestResp: {
      const std::uint32_t nlogs = c->GetCount(8);
      if (!c->ok()) return false;
      f->harvest.logs.clear();
      f->harvest.logs.reserve(nlogs);
      for (std::uint32_t i = 0; i < nlogs; ++i) {
        NodeLogPayload nl;
        nl.node = c->GetI32();
        const std::uint32_t nlog = c->GetCount(12);
        if (!c->ok()) return false;
        nl.log.reserve(nlog);
        for (std::uint32_t j = 0; j < nlog; ++j) {
          GhostWrite w;
          w.id = c->GetI64();
          w.node = c->GetI32();
          nl.log.push_back(w);
        }
        f->harvest.logs.push_back(std::move(nl));
      }
      f->harvest.counts.probes = c->GetI64();
      f->harvest.counts.responses = c->GetI64();
      f->harvest.counts.updates = c->GetI64();
      f->harvest.counts.releases = c->GetI64();
      break;
    }
  }
  // Trailing payload bytes are as malformed as missing ones.
  return c->ok() && c->remaining() == 0;
}

}  // namespace

const char* ToString(FrameType t) {
  switch (t) {
    case FrameType::kPeerHello: return "peer-hello";
    case FrameType::kDriverHello: return "driver-hello";
    case FrameType::kProtocol: return "protocol";
    case FrameType::kInjectWrite: return "inject-write";
    case FrameType::kInjectCombine: return "inject-combine";
    case FrameType::kWriteDone: return "write-done";
    case FrameType::kCombineDone: return "combine-done";
    case FrameType::kStatusReq: return "status-req";
    case FrameType::kStatusResp: return "status-resp";
    case FrameType::kHarvestReq: return "harvest-req";
    case FrameType::kHarvestResp: return "harvest-resp";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kPeerAck: return "peer-ack";
    case FrameType::kBatch: return "batch";
    case FrameType::kQuery: return "query";
    case FrameType::kQueryResp: return "query-resp";
    case FrameType::kTrafficReq: return "traffic-req";
    case FrameType::kTrafficResp: return "traffic-resp";
    case FrameType::kMigrateOut: return "migrate-out";
    case FrameType::kMigrateState: return "migrate-state";
    case FrameType::kMigrateIn: return "migrate-in";
    case FrameType::kMigrateCommit: return "migrate-commit";
    case FrameType::kMigrateDone: return "migrate-done";
    case FrameType::kPlacementUpdate: return "placement-update";
  }
  return "?";
}

const char* ToString(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kBadPayload: return "bad-payload";
  }
  return "?";
}

namespace {

// Deep message equality: Message's own operator compares the wlog pointer,
// but two decodes of the same bytes must compare equal.
bool MessagesEqual(const Message& ma, const Message& mb) {
  return ma.type == mb.type && ma.from == mb.from && ma.to == mb.to &&
         ma.x == mb.x && ma.flag == mb.flag && ma.id == mb.id &&
         std::equal(ma.release_ids.begin(), ma.release_ids.end(),
                    mb.release_ids.begin(), mb.release_ids.end()) &&
         static_cast<bool>(ma.wlog) == static_cast<bool>(mb.wlog) &&
         (!ma.wlog || *ma.wlog == *mb.wlog);
}

}  // namespace

bool FramesEqual(const WireFrame& a, const WireFrame& b) {
  if (a.type != b.type) return false;
  if (a.batch.size() != b.batch.size()) return false;
  for (std::size_t i = 0; i < a.batch.size(); ++i) {
    if (!MessagesEqual(a.batch[i], b.batch[i])) return false;
  }
  return MessagesEqual(a.msg, b.msg) && a.daemon_id == b.daemon_id &&
         a.resume == b.resume &&
         a.ack == b.ack && a.ack_valid == b.ack_valid && a.req == b.req &&
         a.node == b.node && a.arg == b.arg && a.value == b.value &&
         a.gather == b.gather && a.log_prefix == b.log_prefix &&
         a.epoch == b.epoch && a.blob == b.blob && a.moves == b.moves &&
         a.traffic == b.traffic &&
         a.status == b.status && a.harvest == b.harvest;
}

void AppendFrame(std::vector<std::uint8_t>* out, const WireFrame& frame,
                 std::uint8_t version) {
  const std::size_t len_at = out->size();
  PutU32(out, 0);  // patched below
  PutU8(out, kWireMagic);
  PutU8(out, version);
  PutU8(out, static_cast<std::uint8_t>(frame.type));
  EncodePayload(out, frame, version);
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(out->size() - len_at - 4);
  (*out)[len_at] = static_cast<std::uint8_t>(body_len);
  (*out)[len_at + 1] = static_cast<std::uint8_t>(body_len >> 8);
  (*out)[len_at + 2] = static_cast<std::uint8_t>(body_len >> 16);
  (*out)[len_at + 3] = static_cast<std::uint8_t>(body_len >> 24);
}

std::vector<std::uint8_t> EncodeFrame(const WireFrame& frame,
                                      std::uint8_t version) {
  std::vector<std::uint8_t> out;
  AppendFrame(&out, frame, version);
  return out;
}

void AppendMessagePayload(std::vector<std::uint8_t>* out, const Message& m) {
  EncodeMessage(out, m);
}

void AppendBatchFrame(std::vector<std::uint8_t>* out, std::uint32_t count,
                      const std::uint8_t* msgs, std::size_t len,
                      std::uint8_t version) {
  const std::uint32_t body_len = static_cast<std::uint32_t>(3 + 4 + len);
  PutU32(out, body_len);
  PutU8(out, kWireMagic);
  PutU8(out, version);
  PutU8(out, static_cast<std::uint8_t>(FrameType::kBatch));
  PutU32(out, count);
  out->insert(out->end(), msgs, msgs + len);
}

DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t len) {
  DecodeResult r;
  if (len < 4) return r;  // kNeedMore
  const std::uint32_t body_len = static_cast<std::uint32_t>(data[0]) |
                                 static_cast<std::uint32_t>(data[1]) << 8 |
                                 static_cast<std::uint32_t>(data[2]) << 16 |
                                 static_cast<std::uint32_t>(data[3]) << 24;
  // A body shorter than the fixed header or longer than the cap is a
  // corrupted prefix: reject immediately, before waiting for (up to 4 GiB
  // of) bytes that will never arrive.
  if (body_len < 3 || body_len > kMaxFrameLen) {
    r.status = DecodeStatus::kBadLength;
    return r;
  }
  // Magic and version are validated as soon as they are available, so a
  // stream speaking the wrong protocol fails fast.
  if (len >= 5 && data[4] != kWireMagic) {
    r.status = DecodeStatus::kBadMagic;
    return r;
  }
  if (len >= 6 && (data[5] < kWireMinVersion || data[5] > kWireVersion)) {
    r.status = DecodeStatus::kBadVersion;
    return r;
  }
  if (len < 4 + static_cast<std::size_t>(body_len)) return r;  // kNeedMore
  const std::uint8_t version = data[5];
  const std::uint8_t type = data[6];
  // kPeerAck (12) exists only from v3 on, kBatch (13) only from v4 on,
  // kQuery/kQueryResp (14/15) only from v5 on, the traffic/migration
  // frames (16–23) only from v6 on; in an older frame those type bytes
  // are out of range.
  const std::uint8_t max_type =
      version >= 6 ? static_cast<std::uint8_t>(FrameType::kPlacementUpdate)
      : version == 5 ? static_cast<std::uint8_t>(FrameType::kQueryResp)
      : version == 4 ? static_cast<std::uint8_t>(FrameType::kBatch)
      : version == 3 ? static_cast<std::uint8_t>(FrameType::kPeerAck)
                     : static_cast<std::uint8_t>(FrameType::kShutdown);
  if (type > max_type) {
    r.status = DecodeStatus::kBadType;
    return r;
  }
  r.frame.type = static_cast<FrameType>(type);
  r.frame.wire_version = version;
  Cursor c(data + 7, body_len - 3);
  if (!DecodePayload(&c, &r.frame, version)) {
    r.frame = WireFrame{};
    r.status = DecodeStatus::kBadPayload;
    return r;
  }
  r.status = DecodeStatus::kOk;
  r.consumed = 4 + static_cast<std::size_t>(body_len);
  return r;
}

void FrameReader::Feed(const std::uint8_t* data, std::size_t len) {
  if (error_ != DecodeStatus::kOk) return;  // poisoned: drop everything
  // Compact once the consumed prefix dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

DecodeStatus FrameReader::Next(WireFrame* frame) {
  if (error_ != DecodeStatus::kOk) return error_;
  DecodeResult r = DecodeFrame(buf_.data() + pos_, buf_.size() - pos_);
  if (r.status == DecodeStatus::kOk) {
    pos_ += r.consumed;
    if (pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    }
    *frame = std::move(r.frame);
    return DecodeStatus::kOk;
  }
  if (r.status != DecodeStatus::kNeedMore) error_ = r.status;
  return r.status;
}

void FrameReader::Reset() {
  buf_.clear();
  pos_ = 0;
  error_ = DecodeStatus::kOk;
}

}  // namespace treeagg
