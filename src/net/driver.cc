#include "net/driver.h"

#include <poll.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace treeagg {

NetDriver::NetDriver(ClusterConfig config)
    : NetDriver(std::move(config), Options()) {}

NetDriver::NetDriver(ClusterConfig config, Options options)
    : config_(std::move(config)), options_(options) {
  config_.Validate();
}

NetDriver::~NetDriver() {
  try {
    Shutdown();
  } catch (...) {
    // Destructor teardown is best-effort.
  }
}

void NetDriver::Connect() {
  conns_.clear();
  down_.assign(config_.daemons.size(), 0);
  for (const ClusterConfig::DaemonAddr& addr : config_.daemons) {
    std::string err;
    ScopedFd fd =
        ConnectWithBackoff(addr.host, addr.port, options_.transport, &err);
    if (!fd.valid()) {
      throw std::runtime_error("NetDriver: " + err);
    }
    auto conn = std::make_unique<FrameConn>(std::move(fd), options_.transport);
    WireFrame hello;
    hello.type = FrameType::kDriverHello;
    conn->SendFrame(hello);
    conn->Flush();
    conns_.push_back(std::move(conn));
  }
}

FrameConn* NetDriver::ConnForNode(NodeId node) {
  if (node < 0 || node >= config_.NumNodes()) {
    throw std::invalid_argument("NetDriver: node " + std::to_string(node) +
                                " outside the tree");
  }
  const int daemon = config_.node_daemon[static_cast<std::size_t>(node)];
  if (down_[static_cast<std::size_t>(daemon)]) {
    throw std::runtime_error("NetDriver: daemon " + std::to_string(daemon) +
                             " is marked down (inject after restart)");
  }
  FrameConn* conn = conns_[static_cast<std::size_t>(daemon)].get();
  if (conn == nullptr || !conn->open()) {
    throw std::runtime_error("NetDriver: connection to daemon " +
                             std::to_string(daemon) +
                             " is down: " + (conn ? conn->error() : ""));
  }
  return conn;
}

void NetDriver::MarkDaemonDown(int d) {
  down_[static_cast<std::size_t>(d)] = 1;
  auto& conn = conns_[static_cast<std::size_t>(d)];
  if (conn) conn->Close();
}

void NetDriver::ReconnectDaemon(int d) {
  const ClusterConfig::DaemonAddr& addr =
      config_.daemons[static_cast<std::size_t>(d)];
  std::string err;
  ScopedFd fd =
      ConnectWithBackoff(addr.host, addr.port, options_.transport, &err);
  if (!fd.valid()) {
    throw std::runtime_error("NetDriver: reconnect to daemon " +
                             std::to_string(d) + ": " + err);
  }
  auto conn = std::make_unique<FrameConn>(std::move(fd), options_.transport);
  WireFrame hello;
  hello.type = FrameType::kDriverHello;
  conn->SendFrame(hello);
  conn->Flush();
  conns_[static_cast<std::size_t>(d)] = std::move(conn);
  down_[static_cast<std::size_t>(d)] = 0;
}

std::size_t NetDriver::ReinjectIncomplete(const std::vector<int>& daemons) {
  std::size_t resent = 0;
  // records() is in id (= initiation) order; the driver connection is
  // FIFO, so re-applied writes land in initiation order and the final
  // value at every node is unchanged.
  for (const RequestRecord& r : history_.records()) {
    if (r.completed()) continue;
    const int owner = config_.node_daemon[static_cast<std::size_t>(r.node)];
    if (std::find(daemons.begin(), daemons.end(), owner) == daemons.end()) {
      continue;
    }
    FrameConn* conn = ConnForNode(r.node);
    WireFrame f;
    f.req = r.id;
    f.node = r.node;
    if (r.op == ReqType::kWrite) {
      f.type = FrameType::kInjectWrite;
      f.arg = r.arg;
    } else {
      f.type = FrameType::kInjectCombine;
    }
    conn->SendFrame(f);
    ++resent;
  }
  FlushAll();
  return resent;
}

ReqId NetDriver::InjectWrite(NodeId node, Real arg) {
  FrameConn* conn = ConnForNode(node);
  const ReqId id = history_.BeginWrite(node, arg, clock_++);
  WireFrame f;
  f.type = FrameType::kInjectWrite;
  f.req = id;
  f.node = node;
  f.arg = arg;
  conn->SendFrame(f);
  conn->Flush();
  ++outstanding_;
  return id;
}

ReqId NetDriver::InjectCombine(NodeId node) {
  FrameConn* conn = ConnForNode(node);
  const ReqId id = history_.BeginCombine(node, clock_++);
  WireFrame f;
  f.type = FrameType::kInjectCombine;
  f.req = id;
  f.node = node;
  conn->SendFrame(f);
  conn->Flush();
  ++outstanding_;
  return id;
}

query::QueryAnswer NetDriver::QueryNode(NodeId node) {
  FrameConn* conn = ConnForNode(node);
  WireFrame f;
  f.type = FrameType::kQuery;
  f.req = next_query_req_++;
  f.node = node;
  conn->SendFrame(f);
  conn->Flush();
  pending_query_ = f.req;
  query_answered_ = false;
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (!query_answered_) {
    if (NowMs() >= deadline) {
      Timeout("query answer for node " + std::to_string(node));
    }
    PumpOnce(50);
  }
  pending_query_ = kNoRequest;
  return query_answer_;
}

void NetDriver::FlushAll() {
  for (auto& c : conns_) {
    if (c && c->open()) c->Flush();
  }
}

void NetDriver::Timeout(const std::string& what) {
  throw std::runtime_error(
      "NetDriver: timed out waiting for " + what + " (io_timeout_ms = " +
      std::to_string(options_.transport.io_timeout_ms) +
      ", quiescence_deadline_ms = " +
      std::to_string(options_.quiescence_deadline_ms) + ")");
}

void NetDriver::DispatchFrame(std::size_t daemon, WireFrame frame) {
  switch (frame.type) {
    case FrameType::kWriteDone:
      // Re-injection after a crash-restart can complete a request twice
      // (once from the restored daemon state, once from the re-sent
      // frame); the first completion wins.
      if (history_.record(frame.req).completed()) break;
      history_.CompleteWrite(frame.req, clock_++);
      --outstanding_;
      break;
    case FrameType::kCombineDone:
      if (history_.record(frame.req).completed()) break;
      history_.CompleteCombine(frame.req, frame.value, std::move(frame.gather),
                               frame.log_prefix, clock_++);
      --outstanding_;
      break;
    case FrameType::kStatusResp:
      if (current_probe_ != 0 && frame.status.probe == current_probe_ &&
          !status_seen_[daemon]) {
        status_seen_[daemon] = true;
        status_[daemon] = frame.status;
      }
      break;
    case FrameType::kQueryResp:
      // Stale responses (a timed-out query answered late) are dropped.
      if (!query_answered_ && frame.req == pending_query_) {
        query_answer_.epoch = frame.epoch;
        query_answer_.value = frame.value;
        query_answer_.log_prefix = frame.log_prefix;
        query_answered_ = true;
      }
      break;
    case FrameType::kTrafficResp:
      if (collecting_traffic_ && !traffic_seen_[daemon]) {
        traffic_seen_[daemon] = true;
        for (const auto& [node, count] : frame.traffic) {
          if (node >= 0 && node < config_.NumNodes()) {
            traffic_[static_cast<std::size_t>(node)] += count;
          }
        }
      }
      break;
    case FrameType::kMigrateState:
      if (!migrate_state_seen_ && frame.req == pending_migrate_) {
        migrate_state_seen_ = true;
        migrate_blob_.state = std::move(frame.blob);
        migrate_blob_.epoch = frame.epoch;
        migrate_blob_.hosted = frame.resume != 0;
      }
      break;
    case FrameType::kMigrateDone:
      if (frame.req == pending_migrate_) migrate_done_seen_[daemon] = true;
      break;
    case FrameType::kHarvestResp:
      if (collecting_harvest_ && !harvest_seen_[daemon]) {
        harvest_seen_[daemon] = true;
        for (NodeLogPayload& nl : frame.harvest.logs) {
          NodeGhostState g;
          g.node = nl.node;
          g.write_log = std::move(nl.log);
          harvest_.ghosts.push_back(std::move(g));
        }
        harvest_.counts.probes += frame.harvest.counts.probes;
        harvest_.counts.responses += frame.harvest.counts.responses;
        harvest_.counts.updates += frame.harvest.counts.updates;
        harvest_.counts.releases += frame.harvest.counts.releases;
      }
      break;
    default:
      throw std::runtime_error(
          std::string("NetDriver: unexpected frame from daemon ") +
          std::to_string(daemon) + ": " + ToString(frame.type));
  }
}

void NetDriver::PumpOnce(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> owners;
  for (std::size_t d = 0; d < conns_.size(); ++d) {
    if (down_[d]) continue;  // killed by the chaos harness, not a failure
    FrameConn* c = conns_[d].get();
    if (c == nullptr || !c->open()) {
      throw std::runtime_error("NetDriver: daemon " + std::to_string(d) +
                               " connection failed: " +
                               (c ? c->error() : "closed"));
    }
    short events = POLLIN;
    if (c->WantWrite()) events |= POLLOUT;
    pfds.push_back({c->fd(), events, 0});
    owners.push_back(d);
  }
  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    FrameConn* c = conns_[owners[i]].get();
    if (pfds[i].revents & POLLOUT) c->Flush();
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      const bool alive = c->ReadAvailable();
      WireFrame frame;
      for (;;) {
        const DecodeStatus status = c->NextFrame(&frame);
        if (status == DecodeStatus::kNeedMore) break;
        if (status != DecodeStatus::kOk) {
          throw std::runtime_error("NetDriver: daemon " +
                                   std::to_string(owners[i]) + ": " +
                                   c->error());
        }
        DispatchFrame(owners[i], std::move(frame));
        frame = WireFrame{};
      }
      if (!alive) {
        throw std::runtime_error(
            "NetDriver: daemon " + std::to_string(owners[i]) +
            (c->eof() ? " closed the connection" : " failed: " + c->error()));
      }
    }
  }
}

void NetDriver::WaitAllCompleted() {
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (outstanding_ > 0) {
    if (NowMs() >= deadline) Timeout("request completion");
    PumpOnce(50);
  }
}

void NetDriver::WaitCompleted(ReqId id) {
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (!history_.record(id).completed()) {
    if (NowMs() >= deadline) {
      Timeout("completion of request " + std::to_string(id));
    }
    PumpOnce(50);
  }
}

std::vector<StatusPayload> NetDriver::SnapshotStatus() {
  for (std::size_t d = 0; d < conns_.size(); ++d) {
    if (down_[d]) {
      throw std::runtime_error("NetDriver: status snapshot with daemon " +
                               std::to_string(d) +
                               " down (restart it first)");
    }
  }
  current_probe_ = next_probe_++;
  status_.assign(conns_.size(), StatusPayload{});
  status_seen_.assign(conns_.size(), false);
  WireFrame req;
  req.type = FrameType::kStatusReq;
  req.status.probe = current_probe_;
  for (auto& c : conns_) {
    c->SendFrame(req);
    c->Flush();
  }
  const std::int64_t deadline =
      NowMs() + std::min(options_.transport.io_timeout_ms,
                         options_.quiescence_deadline_ms);
  while (!std::all_of(status_seen_.begin(), status_seen_.end(),
                      [](bool b) { return b; })) {
    if (NowMs() >= deadline) {
      // Name the first daemon that never answered: the usual cause is a
      // dead or hung daemon, and "which one" is the whole diagnosis.
      std::string who;
      for (std::size_t d = 0; d < status_seen_.size(); ++d) {
        if (!status_seen_[d]) {
          who = "daemon " + std::to_string(d) + " unresponsive";
          break;
        }
      }
      Timeout("status snapshot (" + who + ")");
    }
    PumpOnce(50);
  }
  current_probe_ = 0;
  return status_;
}

void NetDriver::WaitQuiescent() {
  const std::int64_t deadline = NowMs() + options_.quiescence_deadline_ms;
  std::vector<StatusPayload> prev;
  for (;;) {
    std::vector<StatusPayload> snap = SnapshotStatus();
    std::uint64_t sent = 0, received = 0, queued = 0;
    for (const StatusPayload& s : snap) {
      sent += s.sent;
      received += s.received;
      queued += s.queued;
    }
    const bool settled = sent == received && queued == 0;
    if (settled && !prev.empty()) {
      bool same = true;
      for (std::size_t d = 0; d < snap.size(); ++d) {
        if (snap[d].sent != prev[d].sent ||
            snap[d].received != prev[d].received) {
          same = false;
          break;
        }
      }
      if (same) {
        total_messages_ = sent;
        return;
      }
    }
    prev = settled ? std::move(snap) : std::vector<StatusPayload>{};
    if (NowMs() >= deadline) Timeout("quiescence");
  }
}

NetDriver::HarvestResult NetDriver::Harvest() {
  collecting_harvest_ = true;
  harvest_ = HarvestResult{};
  harvest_seen_.assign(conns_.size(), false);
  WireFrame req;
  req.type = FrameType::kHarvestReq;
  for (auto& c : conns_) {
    c->SendFrame(req);
    c->Flush();
  }
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (!std::all_of(harvest_seen_.begin(), harvest_seen_.end(),
                      [](bool b) { return b; })) {
    if (NowMs() >= deadline) Timeout("harvest");
    PumpOnce(50);
  }
  collecting_harvest_ = false;
  std::sort(harvest_.ghosts.begin(), harvest_.ghosts.end(),
            [](const NodeGhostState& a, const NodeGhostState& b) {
              return a.node < b.node;
            });
  return std::move(harvest_);
}

// --- placement / migration (wire v6) --------------------------------------

FrameConn* NetDriver::ConnForDaemon(int d) {
  if (d < 0 || d >= static_cast<int>(conns_.size())) {
    throw std::invalid_argument("NetDriver: daemon " + std::to_string(d) +
                                " outside the cluster");
  }
  if (down_[static_cast<std::size_t>(d)]) {
    throw std::runtime_error("NetDriver: daemon " + std::to_string(d) +
                             " is marked down");
  }
  FrameConn* conn = conns_[static_cast<std::size_t>(d)].get();
  if (conn == nullptr || !conn->open()) {
    throw std::runtime_error("NetDriver: connection to daemon " +
                             std::to_string(d) +
                             " is down: " + (conn ? conn->error() : ""));
  }
  return conn;
}

void NetDriver::WaitMigrateDone(int daemon, const std::string& what) {
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (!migrate_done_seen_[static_cast<std::size_t>(daemon)]) {
    if (NowMs() >= deadline) Timeout(what);
    PumpOnce(50);
  }
  pending_migrate_ = kNoRequest;
}

std::vector<std::uint64_t> NetDriver::HarvestTraffic() {
  collecting_traffic_ = true;
  traffic_.assign(static_cast<std::size_t>(config_.NumNodes()), 0);
  traffic_seen_.assign(conns_.size(), false);
  WireFrame req;
  req.type = FrameType::kTrafficReq;
  req.req = next_migrate_req_++;
  for (auto& c : conns_) {
    c->SendFrame(req);
    c->Flush();
  }
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (!std::all_of(traffic_seen_.begin(), traffic_seen_.end(),
                      [](bool b) { return b; })) {
    if (NowMs() >= deadline) Timeout("traffic harvest");
    PumpOnce(50);
  }
  collecting_traffic_ = false;
  return std::move(traffic_);
}

NetDriver::MigrationBlob NetDriver::MigrateOut(NodeId node) {
  FrameConn* conn = ConnForNode(node);  // the owner per this driver's map
  WireFrame f;
  f.type = FrameType::kMigrateOut;
  f.req = next_migrate_req_++;
  f.node = node;
  conn->SendFrame(f);
  conn->Flush();
  pending_migrate_ = f.req;
  migrate_state_seen_ = false;
  migrate_blob_ = MigrationBlob{};
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (!migrate_state_seen_) {
    if (NowMs() >= deadline) {
      Timeout("migration state of node " + std::to_string(node));
    }
    PumpOnce(50);
  }
  pending_migrate_ = kNoRequest;
  return std::move(migrate_blob_);
}

void NetDriver::MigrateIn(NodeId node, int target, const MigrationBlob& blob) {
  FrameConn* conn = ConnForDaemon(target);
  WireFrame f;
  f.type = FrameType::kMigrateIn;
  f.req = next_migrate_req_++;
  f.node = node;
  f.epoch = blob.epoch;
  f.blob = blob.state;
  conn->SendFrame(f);
  conn->Flush();
  pending_migrate_ = f.req;
  migrate_done_seen_.assign(conns_.size(), false);
  WaitMigrateDone(target, "install of node " + std::to_string(node) +
                              " on daemon " + std::to_string(target));
}

void NetDriver::MigrateCommit(NodeId node, int target) {
  const int owner = config_.node_daemon[static_cast<std::size_t>(node)];
  FrameConn* conn = ConnForNode(node);
  WireFrame f;
  f.type = FrameType::kMigrateCommit;
  f.req = next_migrate_req_++;
  f.node = node;
  f.daemon_id = static_cast<std::uint32_t>(target);
  conn->SendFrame(f);
  conn->Flush();
  pending_migrate_ = f.req;
  migrate_done_seen_.assign(conns_.size(), false);
  WaitMigrateDone(owner, "commit of node " + std::to_string(node));
  // The driver's own routing follows the commit: later injections (and a
  // retried MigrateOut) go to the new owner.
  config_.node_daemon[static_cast<std::size_t>(node)] = target;
}

void NetDriver::BroadcastPlacement() {
  WireFrame f;
  f.type = FrameType::kPlacementUpdate;
  f.req = next_migrate_req_++;
  f.moves.reserve(static_cast<std::size_t>(config_.NumNodes()));
  for (NodeId u = 0; u < config_.NumNodes(); ++u) {
    f.moves.emplace_back(u, config_.node_daemon[static_cast<std::size_t>(u)]);
  }
  pending_migrate_ = f.req;
  migrate_done_seen_.assign(conns_.size(), false);
  for (auto& c : conns_) {
    c->SendFrame(f);
    c->Flush();
  }
  // The update may re-latch a daemon's peer bring-up gate (new peer links
  // to establish) before it acks; the io timeout comfortably covers the
  // reconnect handshakes.
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  while (!std::all_of(migrate_done_seen_.begin(), migrate_done_seen_.end(),
                      [](bool b) { return b; })) {
    if (NowMs() >= deadline) Timeout("placement broadcast");
    PumpOnce(50);
  }
  pending_migrate_ = kNoRequest;
}

std::size_t NetDriver::ApplyPlacement(const std::vector<int>& plan) {
  if (plan.size() != config_.node_daemon.size()) {
    throw std::invalid_argument("ApplyPlacement: plan covers " +
                                std::to_string(plan.size()) +
                                " nodes, tree has " +
                                std::to_string(config_.node_daemon.size()));
  }
  std::vector<NodeId> moves;
  for (NodeId u = 0; u < config_.NumNodes(); ++u) {
    const int d = plan[static_cast<std::size_t>(u)];
    if (d < 0 || d >= config_.NumDaemons()) {
      throw std::invalid_argument("ApplyPlacement: plan assigns node " +
                                  std::to_string(u) + " to unknown daemon " +
                                  std::to_string(d));
    }
    if (d != config_.node_daemon[static_cast<std::size_t>(u)]) {
      moves.push_back(u);
    }
  }
  if (moves.empty()) return 0;  // no-op re-placement: not a single frame
  for (const NodeId u : moves) {
    const int target = plan[static_cast<std::size_t>(u)];
    const MigrationBlob blob = MigrateOut(u);
    // hosted == false: the owner already committed this node away (we are
    // retrying after a crash) — the target has it, go straight to the
    // (idempotent) commit so the driver map catches up.
    if (blob.hosted) MigrateIn(u, target, blob);
    MigrateCommit(u, target);
  }
  BroadcastPlacement();
  return moves.size();
}

void NetDriver::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  WireFrame f;
  f.type = FrameType::kShutdown;
  for (auto& c : conns_) {
    if (c == nullptr || !c->open()) continue;
    c->SendFrame(f);
    // Bounded blocking flush: the socket buffer has room for one tiny
    // frame in any sane teardown; give up quietly if not.
    const std::int64_t deadline = NowMs() + 1000;
    while (c->open() && c->WantWrite() && NowMs() < deadline) {
      if (!c->Flush()) break;
      if (c->WantWrite()) {
        pollfd pfd{c->fd(), POLLOUT, 0};
        ::poll(&pfd, 1, 10);
      }
    }
    c->Close();
  }
}

}  // namespace treeagg
