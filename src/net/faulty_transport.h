// Frame-level fault injection for the networked backend.
//
// Two pieces live here:
//
//   Frame mutators — pure functions that take a well-formed WireFrame and
//   return deliberately damaged encodings (truncated inside a multi-byte
//   integer with a consistent length prefix, oversized length prefix,
//   duplicated frame). They are the single source of malformed-frame
//   material for both the wire-format tests and live chaos runs, so the
//   corpus and the injector can never drift apart.
//
//   PeerFaultInjector — a seeded decision source consulted by NodeDaemon
//   on every outbound peer frame while "armed". It can corrupt the frame
//   on the wire (ahead of the codec) or sever the socket after sending.
//   Every injected fault is *detectable*: a corrupted frame poisons the
//   receiver's FrameReader, which tears the peer connection down, and the
//   kPeerHello resume handshake replays the clean copy from the sender's
//   session log. Faults therefore cost retransmissions and reconnects but
//   never silently alter protocol state — the recovery path, not the
//   fault, is what is being exercised.
//
//   Delay profiles — gray failure (every outbound peer frame from this
//   daemon is slow) and per-peer WAN/geo latency windows. The injector
//   only *prices* the delay (DelayUsFor); the daemon holds the frame in
//   its per-peer held queue until the deadline, so the wire bytes are
//   untouched — old-dialect peers cannot observe any format change.
//
// Thread model: Arm()/Disarm()/ArmGray()/ArmLat() are called from the
// harness thread; Decide()/Corrupt()/DelayUsFor() only from the owning
// daemon's thread. The armed flags are the only cross-thread state; the
// profile tables are immutable after construction.
#ifndef TREEAGG_NET_FAULTY_TRANSPORT_H_
#define TREEAGG_NET_FAULTY_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/wire.h"

namespace treeagg {

// A seeded uniform per-message delay window in microseconds. Zero-width
// (max_us == 0) means "no profile".
struct DelayProfile {
  std::int64_t min_us = 0;
  std::int64_t max_us = 0;
  bool valid() const { return max_us > 0; }
};

// `frame` encoded, then cut `drop_bytes` off the end of the body with the
// length prefix rewritten to match the shortened body. The cut lands
// inside the payload's fixed-width integers, so decoding fails with
// kBadPayload (never a crash, never a partial frame accepted).
// `drop_bytes` is clamped to keep the 3-byte body header intact.
std::vector<std::uint8_t> TruncatedFrame(const WireFrame& frame,
                                         std::size_t drop_bytes);

// `frame` encoded with its length prefix overwritten by a value above
// kMaxFrameLen: the decoder must reject it as kBadLength before waiting
// for (or allocating) the claimed body.
std::vector<std::uint8_t> OversizedLengthFrame(const WireFrame& frame);

// Two back-to-back copies of `frame`'s encoding: both decode cleanly, so
// a receiver without exactly-once protection processes the frame twice.
std::vector<std::uint8_t> DuplicatedFrame(const WireFrame& frame);

class PeerFaultInjector {
 public:
  struct Options {
    // Probability an outbound peer frame is corrupted on the wire.
    double corrupt_probability = 0;
    // Probability the socket is severed right after an outbound frame.
    double sever_probability = 0;
    std::uint64_t seed = 1;
    // Gray failure: while ArmGray() is set, every outbound peer frame from
    // this daemon is priced with a draw from this window.
    DelayProfile gray;
    // WAN/geo: per-destination-daemon latency windows, applied while
    // ArmLat(peer) is set. Immutable after construction.
    std::unordered_map<int, DelayProfile> lat;
  };

  enum class Action { kNone, kCorrupt, kSever };

  explicit PeerFaultInjector(const Options& options)
      : options_(options), rng_(options.seed) {
    // Pre-build the per-peer armed flags so the map never rehashes after
    // construction (it is read lock-free from the daemon thread).
    for (const auto& [peer, profile] : options_.lat) {
      (void)profile;
      lat_armed_[peer].store(false, std::memory_order_relaxed);
    }
  }

  // Window control (harness thread): faults fire only while armed.
  void Arm() { armed_.store(true, std::memory_order_relaxed); }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Delay-window control (harness thread). ArmLat on a peer without a
  // profile is a no-op.
  void ArmGray() { gray_armed_.store(true, std::memory_order_relaxed); }
  void DisarmGray() { gray_armed_.store(false, std::memory_order_relaxed); }
  void ArmLat(int peer);
  void DisarmLat(int peer);
  // Clears every armed flag (corruption, gray, and all lat peers) — the
  // chaos harness's leftover-heal sweep.
  void DisarmAll();

  // Daemon thread: the fate of one outbound frame.
  Action Decide();

  // Daemon thread: a damaged encoding of `frame` (random mutator choice).
  std::vector<std::uint8_t> Corrupt(const WireFrame& frame);

  // Daemon thread: injected microseconds of extra latency for one outbound
  // frame to `peer` (gray draw + lat draw; 0 when nothing armed applies).
  std::int64_t DelayUsFor(int peer);

  // True when any delay window could ever fire — lets the daemon skip the
  // held-frame bookkeeping entirely for corruption-only injectors.
  bool HasDelayProfiles() const {
    return options_.gray.valid() || !options_.lat.empty();
  }

  // How often each fault actually fired (tests assert the fault window was
  // not vacuously empty; the chaos harness reports them).
  std::size_t corrupted_count() const {
    return corrupted_.load(std::memory_order_relaxed);
  }
  std::size_t severed_count() const {
    return severed_.load(std::memory_order_relaxed);
  }
  std::size_t delayed_count() const {
    return delayed_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  Rng rng_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> gray_armed_{false};
  std::unordered_map<int, std::atomic<bool>> lat_armed_;
  std::atomic<std::size_t> corrupted_{0};
  std::atomic<std::size_t> severed_{0};
  std::atomic<std::size_t> delayed_{0};
};

}  // namespace treeagg

#endif  // TREEAGG_NET_FAULTY_TRANSPORT_H_
