// LocalCluster: the whole networked backend inside one process.
//
// Every daemon of the cluster runs on its own thread, listening on
// 127.0.0.1 with an OS-assigned ephemeral port; the driver talks to them
// over real loopback TCP. This is the configuration tests and `treeagg_cli
// drive --net-local` use — the full wire protocol and transport are
// exercised with no hardcoded ports and no external processes.
//
// Port bootstrap: every daemon binds port 0 first, then the resolved ports
// are distributed to all daemons (and the driver) before any Run() starts,
// so peer connections always target a bound listener.
#ifndef TREEAGG_NET_LOCAL_CLUSTER_H_
#define TREEAGG_NET_LOCAL_CLUSTER_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "net/cluster.h"
#include "net/daemon.h"
#include "net/driver.h"
#include "query/validate.h"
#include "workload/request.h"

namespace treeagg {

class LocalCluster {
 public:
  struct Options {
    int daemons = 2;
    std::string policy = "RWW";
    std::string op = "sum";
    bool ghost_logging = true;
    std::string placement = "block";  // block | rr | subtree
    // Explicit node -> daemon map (size = tree size); non-empty overrides
    // `placement`. This is how a traffic-informed plan from
    // place::OptimizePlacement is handed to a fresh cluster.
    std::vector<int> assignment;
    // Poll loops per daemon (see NodeDaemonOptions::reactors). 1 keeps
    // every daemon single-threaded; N shards hosted nodes over N-1
    // workers plus the primary I/O reactor.
    int reactors = 1;
    TransportOptions transport;
    // Upper bound on driver quiescence waits (see NetDriver::Options).
    std::int64_t quiescence_deadline_ms = 120000;
    // Per-daemon frame-level fault injectors (chaos runs); empty = none.
    // Indexed by daemon id; shared so the harness can arm/disarm them.
    std::vector<std::shared_ptr<PeerFaultInjector>> fault_injectors;
    // Disk snapshots + cumulative-ack GC (see net/durability.h). Here
    // `state_dir` is the cluster ROOT: daemon `d` gets its own
    // `<state_dir>/daemon-<d>` subdirectory. Empty = memory-durable only.
    DurabilityOptions durability;
    // Observability (see NodeDaemonOptions). metrics instruments every
    // daemon; metrics_port >= 0 additionally serves /metrics per daemon —
    // 0 gives each daemon an OS-assigned port (query DaemonMetricsPort),
    // a positive P gives daemon d port P + d.
    bool metrics = false;
    int metrics_port = -1;
  };

  // How RestartDaemon rebuilds a killed daemon's state.
  //   kDurable: restore the state captured at kill time (or, with a
  //     state_dir, let the daemon reload its own disk snapshot) — the
  //     crash is a pure pause.
  //   kAmnesia: discard it (and delete the disk snapshot) — the daemon
  //     rejoins blank, the model for a node replaced by fresh hardware.
  enum class RestartMode { kDurable, kAmnesia };

  // Spins up the daemons and connects the driver. Throws on any setup
  // failure (everything already started is torn down).
  LocalCluster(const std::vector<NodeId>& tree_parent, const Options& options);
  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  NetDriver& driver() { return *driver_; }
  const ClusterConfig& config() const { return config_; }

  // Shuts the driver connection down and joins every daemon thread.
  // Idempotent; called by the destructor.
  void Stop();

  // First daemon-side error, if any (valid after Stop()).
  std::string DaemonError() const;

  // The port daemon d's /metrics endpoint is bound to (0 when the cluster
  // runs without metrics serving, or while d is killed).
  std::uint16_t DaemonMetricsPort(int d) const;

  // Largest replay-log length any daemon's peer session ever reached,
  // across kills and restarts — the quantity the cumulative-ack GC bounds.
  std::uint64_t ReplayLogHighWater() const;

  // Sum of the named obs counter over every live daemon's registry
  // (0 when the cluster runs without metrics). The benchmark uses this
  // for whole-cluster transport ratios, e.g.
  // treeagg_transport_messages_sent_total /
  // treeagg_transport_protocol_frames_sent_total = messages per frame.
  std::uint64_t SumDaemonCounters(const std::string& name) const;

  // --- placement / re-placement (wire v6) -------------------------------
  // Sum of the per-edge traffic counters over every daemon ([u] = messages
  // on node u's parent edge). Call at quiescence.
  std::vector<std::uint64_t> HarvestTraffic();
  // Live re-placement: migrates every node whose assignment differs from
  // `plan` (driver().ApplyPlacement) and keeps the cluster's own config in
  // step, so a later RestartDaemon rebuilds from the post-migration map.
  // Returns the number of nodes moved. Requires a quiescent cluster.
  std::size_t Rebalance(const std::vector<int>& plan);

  // --- fault injection (chaos harness) ----------------------------------
  // Fail-stop crash of daemon `d`: the driver marks it down, the daemon
  // thread is stopped and joined, the durable state is extracted, and the
  // daemon object (with its listener socket) is destroyed. Requests
  // in flight on its driver connection may be lost — RestartDaemon
  // re-injects them.
  void KillDaemon(int d);
  // Brings daemon `d` back: a fresh NodeDaemon with the extracted durable
  // state (kDurable) or none of it (kAmnesia) rebinds the same port, peer
  // sessions resume via the kPeerHello handshake, the driver reconnects
  // and re-injects the requests that may have died with the old
  // connection. Returns how many requests were re-injected.
  std::size_t RestartDaemon(int d, RestartMode mode = RestartMode::kDurable);
  // Transient partition: severs the TCP link between two daemons (no-op
  // if they share no tree edge). Both sides recover through session
  // resume; convergence is delayed, never lost.
  void SeverPeerLink(int d1, int d2);
  // Asymmetric partition: pauses (or resumes) outbound frames from daemon
  // `from_d` to daemon `to_d` only; the reverse direction keeps flowing.
  // Paused frames accumulate in from_d's held queue and release in FIFO
  // order on resume.
  void SetSendPaused(int from_d, int to_d, bool paused);
  // Sum of NodeDaemon::FramesHeld over the live daemons (tests assert a
  // pause/delay window actually held traffic).
  std::uint64_t FramesHeldTotal() const;

 private:
  // Daemon options for daemon `d`: the shared template plus its injector
  // and (disk mode) its own state subdirectory.
  NodeDaemon::Options DaemonOptionsFor(int d) const;

  ClusterConfig config_;
  NodeDaemon::Options daemon_options_;
  std::uint64_t replay_hwm_ = 0;  // carried across KillDaemon
  std::vector<std::unique_ptr<NodeDaemon>> daemons_;
  std::vector<std::unique_ptr<NodeDaemon::DurableState>> durable_;
  std::vector<std::thread> threads_;
  std::unique_ptr<NetDriver> driver_;
  std::vector<std::shared_ptr<PeerFaultInjector>> injectors_;
  bool stopped_ = false;
};

// One workload run on a LocalCluster, packaged for tests, the CLI, and the
// benchmark. `sequential` injects one request at a time, waiting for its
// completion and for cluster quiescence before the next (strict-consistent
// by construction; this is the mode the cross-backend equivalence harness
// compares against the sequential simulator). Pipelined mode injects
// everything up front and waits once.
struct NetRunResult {
  History history;
  std::vector<NodeGhostState> ghosts;
  MessageCounts counts;          // protocol messages by type (send side)
  std::uint64_t total_messages = 0;
  double elapsed_sec = 0;
  double requests_per_sec = 0;
  // Whole-cluster transport counters (0 unless options.metrics). The
  // batching win is wire_messages / wire_frames; syscall coalescing is
  // wire_frames / send_syscalls.
  std::uint64_t wire_messages = 0;   // protocol messages put on the wire
  std::uint64_t wire_frames = 0;     // kProtocol + kBatch frames sent
  std::uint64_t frames_sent = 0;     // frames of every type sent
  std::uint64_t send_syscalls = 0;   // ::send calls issued
  // Snapshot-tier answers (ProbeVia::kSnapshot only) and their offline
  // validation against the harvested ghost logs.
  std::vector<query::ServedQuery> queries;
  CheckResult query_check = CheckResult::Ok();
  // Live re-placement stats (replace_after > 0 only). cross_weight_* are
  // the harvested-traffic cross-daemon weights of the placement before and
  // after the mid-run rebalance.
  std::size_t nodes_moved = 0;
  std::uint64_t cross_weight_before = 0;
  std::uint64_t cross_weight_after = 0;
  // Final per-edge traffic counters ([u] = messages on node u's parent
  // edge), harvested at end of run — the input `treeagg_cli place` scores
  // placements against (see place/traffic.h).
  std::vector<std::uint64_t> traffic;
};

// How RunNetWorkload serves the combine requests of sigma.
//   kMechanism: InjectCombine — the Figure 1 lease protocol (a probe wave
//     up the tree, paying the Figure-2 message costs). The default.
//   kSnapshot: the read tier — every combine of sigma becomes an
//     off-ledger QueryNode() instead. No mechanism message is generated,
//     so the harvested message counts cover the writes alone; the served
//     answers are validated with ValidateQueryAnswers.
enum class ProbeVia { kMechanism, kSnapshot };

// `replace_after` > 0 arms a live re-placement: after that many requests
// have been injected (and the cluster drained to quiescence), the harvested
// per-edge traffic feeds place::OptimizePlacement and the resulting plan is
// applied with Rebalance() — then the remaining requests run on the new
// placement. The NetRunResult migration-stat fields record what happened.
NetRunResult RunNetWorkload(const std::vector<NodeId>& tree_parent,
                            const RequestSequence& sigma,
                            const LocalCluster::Options& options,
                            bool sequential,
                            ProbeVia probe_via = ProbeVia::kMechanism,
                            std::size_t replace_after = 0);

}  // namespace treeagg

#endif  // TREEAGG_NET_LOCAL_CLUSTER_H_
