// Cross-backend equivalence harness.
//
// The repo has three executors of the same (tree, workload, policy)
// triple: the sequential simulator (src/sim), the thread-per-node actor
// runtime (src/runtime), and the networked multi-process backend
// (src/net). They share the LeaseNode mechanism and policy objects, so on
// a SEQUENTIAL schedule — each request injected in a quiescent state and
// run to quiescence — all three must produce:
//
//   * the same per-request combine answers (Lemma 3.12: every lease-based
//     algorithm is strictly consistent on sequential executions),
//   * the same final aggregate (an appended combine at node 0), and
//   * histories that pass the strict and causal checkers.
//
// The harness runs one triple on each backend in that sequential mode
// (runtime: inject + WaitQuiescent; net: inject + WaitCompleted +
// WaitQuiescent) and diffs the results. It is both an integration test of
// the networked backend and a machine-checked statement that the wire
// protocol changes nothing about the algorithm.
#ifndef TREEAGG_NET_EQUIVALENCE_H_
#define TREEAGG_NET_EQUIVALENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/request.h"

namespace treeagg {

struct EquivalenceSpec {
  std::vector<NodeId> tree_parent;
  RequestSequence sigma;
  std::string policy = "RWW";
  std::string op = "sum";
  int net_daemons = 2;             // daemons of the net backend run
  std::string placement = "block";
  // Net-backend transport knobs (defaults match the production serve
  // defaults): kBatch coalescing and multi-reactor sharding must change
  // NOTHING the harness observes, so equivalence suites re-run the same
  // triples with these turned on.
  int net_batch_bytes = 0;         // >0 enables per-edge frame batching
  std::int64_t net_batch_flush_us = 0;  // linger before a partial flush
  int net_reactors = 1;            // poll loops per daemon
  Real tolerance = 1e-9;
};

// One backend's observation of the triple.
struct BackendRun {
  std::string backend;         // "sim" | "runtime" | "net"
  std::vector<Real> answers;   // combine answers, injection order
  Real final_value = 0;        // appended Combine at node 0
  std::int64_t total_messages = 0;
  bool strict_ok = false;
  bool causal_ok = false;
  std::string message;         // first checker violation, empty when ok
};

BackendRun RunSimBackend(const EquivalenceSpec& spec);
BackendRun RunRuntimeBackend(const EquivalenceSpec& spec);
BackendRun RunNetBackend(const EquivalenceSpec& spec);

struct EquivalenceReport {
  bool ok = false;
  std::string message;  // first divergence, empty when ok
  std::vector<BackendRun> runs;
};

// Runs the triple on all three backends and diffs answers, final
// aggregates, and checker verdicts.
EquivalenceReport CheckBackendEquivalence(const EquivalenceSpec& spec);

}  // namespace treeagg

#endif  // TREEAGG_NET_EQUIVALENCE_H_
