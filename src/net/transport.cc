#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace treeagg {
namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool FillAddr(const std::string& host, std::uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, resolved.c_str(), &addr->sin_addr) == 1;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

TcpListener TcpListener::Bind(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) {
    throw std::runtime_error("TcpListener: bad host " + host);
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw std::runtime_error(Errno("socket"));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw std::runtime_error(Errno("bind " + host + ":" +
                                   std::to_string(port)));
  }
  if (::listen(fd.get(), 64) != 0) throw std::runtime_error(Errno("listen"));
  SetNonBlocking(fd.get());
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw std::runtime_error(Errno("getsockname"));
  }
  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

ScopedFd TcpListener::Accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) return ScopedFd();
  SetNonBlocking(fd);
  SetNoDelay(fd);
  return ScopedFd(fd);
}

void FrameConn::FailWith(std::string msg) {
  failed_ = true;
  if (error_.empty()) error_ = std::move(msg);
}

void FrameConn::CheckBackpressure() {
  if (OutboundBytes() > options_.max_write_buffer) {
    if (obs_) obs_->backpressure_stalls->Inc();
    FailWith("write buffer overflow (peer not draining)");
  }
}

void FrameConn::SendFrame(const WireFrame& frame) {
  if (!open()) return;
  FlushBatchNow();  // frames never overtake earlier batched messages
  AppendFrame(&out_, frame, wire_version_);
  if (obs_) {
    obs_->frames_sent->Inc();
    if (frame.type == FrameType::kProtocol) {
      obs_->messages_sent->Inc();
      obs_->protocol_frames_sent->Inc();
    }
  }
  CheckBackpressure();
}

void FrameConn::QueueMessage(const Message& m) {
  if (!open()) return;
  if (options_.batch_bytes == 0 || wire_version_ < 4) {
    WireFrame f;
    f.type = FrameType::kProtocol;
    f.msg = m;
    SendFrame(f);
    return;
  }
  if (batch_count_ == 0) {
    batch_deadline_us_ = NowUs() + options_.batch_flush_us;
  }
  AppendMessagePayload(&batch_payload_, m);
  ++batch_count_;
  if (obs_) obs_->messages_sent->Inc();
  // Cap the batch body well under kMaxFrameLen no matter what the caller
  // configured: an over-long frame would poison the peer's stream.
  const std::size_t cap = std::min(options_.batch_bytes, kMaxFrameLen / 2);
  if (batch_payload_.size() >= cap) FlushBatchNow();
}

void FrameConn::FlushBatchNow() {
  if (batch_count_ == 0) return;
  AppendBatchFrame(&out_, batch_count_, batch_payload_.data(),
                   batch_payload_.size(), wire_version_);
  if (obs_) {
    obs_->frames_sent->Inc();
    obs_->protocol_frames_sent->Inc();
  }
  batch_payload_.clear();
  batch_count_ = 0;
  batch_deadline_us_ = -1;
  CheckBackpressure();
}

void FrameConn::SendRawBytes(const std::vector<std::uint8_t>& bytes) {
  if (!open()) return;
  FlushBatchNow();
  out_.insert(out_.end(), bytes.begin(), bytes.end());
  CheckBackpressure();
}

bool FrameConn::Flush() {
  if (!open()) return false;
  if (batch_count_ > 0 &&
      (options_.batch_flush_us <= 0 || NowUs() >= batch_deadline_us_)) {
    FlushBatchNow();
  }
  while (out_pos_ < out_.size()) {
    if (obs_) obs_->send_syscalls->Inc();
    const ssize_t n = ::send(fd_.get(), out_.data() + out_pos_,
                             out_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      if (obs_) obs_->bytes_sent->Add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    FailWith(Errno("send"));
    return false;
  }
  if (out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
  } else if (out_pos_ > (1u << 16) && out_pos_ * 2 > out_.size()) {
    out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(out_pos_));
    out_pos_ = 0;
  }
  return true;
}

bool FrameConn::ReadAvailable() {
  if (!open()) return false;
  std::uint8_t buf[16384];
  for (;;) {
    if (obs_) obs_->recv_syscalls->Inc();
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Feed(buf, static_cast<std::size_t>(n));
      if (obs_) obs_->bytes_received->Add(static_cast<std::uint64_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) return true;
      continue;
    }
    if (n == 0) {
      eof_ = true;
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    FailWith(Errno("recv"));
    return false;
  }
}

DecodeStatus FrameConn::NextFrame(WireFrame* frame) {
  const DecodeStatus status = reader_.Next(frame);
  if (status == DecodeStatus::kOk) {
    if (obs_) {
      obs_->frames_received->Inc();
      if (frame->type == FrameType::kProtocol) {
        obs_->messages_received->Inc();
      } else if (frame->type == FrameType::kBatch) {
        obs_->messages_received->Add(frame->batch.size());
      }
    }
  } else if (status != DecodeStatus::kNeedMore) {
    FailWith(std::string("malformed frame: ") + ToString(status));
  }
  return status;
}

ScopedFd ConnectWithBackoff(const std::string& host, std::uint16_t port,
                            const TransportOptions& options,
                            std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) {
    if (error) *error = "bad host " + host;
    return ScopedFd();
  }
  const std::int64_t deadline = NowMs() + options.connect_timeout_ms;
  std::int64_t backoff = options.backoff_initial_ms;
  std::string last_error = "connect never attempted";
  for (;;) {
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      last_error = Errno("socket");
    } else {
      SetNonBlocking(fd.get());
      const int rc =
          ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      bool pending = rc != 0 && errno == EINPROGRESS;
      if (rc == 0 || pending) {
        // Wait for the handshake to resolve, bounded by the deadline.
        pollfd pfd{fd.get(), POLLOUT, 0};
        const std::int64_t budget = deadline - NowMs();
        const int ready =
            ::poll(&pfd, 1, budget > 0 ? static_cast<int>(budget) : 0);
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (ready > 0 && soerr == 0) {
          SetNoDelay(fd.get());
          return fd;
        }
        last_error = soerr != 0
                         ? "connect: " + std::string(std::strerror(soerr))
                         : "connect: handshake timed out";
      } else {
        last_error = Errno("connect");
      }
    }
    if (NowMs() + backoff >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min(backoff * 2, options.backoff_max_ms);
  }
  if (error) {
    *error = "connect to " + host + ":" + std::to_string(port) +
             " failed after retries: " + last_error;
  }
  return ScopedFd();
}

}  // namespace treeagg
