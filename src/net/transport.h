// Non-blocking TCP building blocks of the networked backend.
//
// The daemon and the driver own poll() loops; this module supplies the
// pieces those loops are built from:
//
//   ScopedFd           — RAII file descriptor
//   TcpListener        — non-blocking listener; port 0 asks the OS for an
//                        ephemeral port (the only mode tests use)
//   FrameConn          — a framed connection: write buffering with a
//                        backpressure cap, incremental frame decoding
//   ConnectWithBackoff — connection establishment with exponential
//                        backoff, bounded by a configurable total timeout
//
// All sockets are non-blocking with TCP_NODELAY (the protocol is chatty
// request/response traffic; Nagle would serialize every probe round-trip).
// Writes use MSG_NOSIGNAL: a peer that disappears surfaces as an error
// return, never as SIGPIPE.
//
// Scope note: backoff-and-retry covers connection *establishment* (daemons
// of one cluster start in arbitrary order). An established peer connection
// that drops mid-run is recovered one layer up: the daemon keeps a replay
// log of sent protocol frames per peer session, and the kPeerHello resume
// handshake retransmits exactly the frames the other side never processed
// (see net/daemon.h). Recovery is frame-granular, never from an arbitrary
// byte position, so the frame stream cannot be corrupted by a resend.
#ifndef TREEAGG_NET_TRANSPORT_H_
#define TREEAGG_NET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"

namespace treeagg {

// Monotonic clock in milliseconds (steady_clock under the hood).
std::int64_t NowMs();
// Same clock in microseconds (batch flush deadlines are sub-millisecond).
std::int64_t NowUs();

struct TransportOptions {
  // Total budget for establishing one connection, retries included.
  std::int64_t connect_timeout_ms = 10000;
  // Exponential backoff between connect attempts: initial doubles up to max.
  std::int64_t backoff_initial_ms = 10;
  std::int64_t backoff_max_ms = 1000;
  // Progress timeout for driver-side waits (completion, quiescence,
  // harvest): if no awaited frame arrives within this budget the wait
  // fails instead of hanging.
  std::int64_t io_timeout_ms = 60000;
  // Backpressure cap: a connection whose unsent backlog exceeds this is
  // treated as failed (the peer has stopped draining).
  std::size_t max_write_buffer = 64u << 20;
  // Per-edge frame coalescing (wire v4). batch_bytes > 0 turns batching
  // on: consecutive protocol messages toward one peer accumulate in a
  // coalescing buffer and leave as a single kBatch frame. A batch flushes
  // when its encoded size reaches batch_bytes, when any other frame type
  // is sent on the edge (per-edge FIFO is preserved by construction), or
  // at the first socket flush after batch_flush_us microseconds
  // (batch_flush_us = 0 flushes at every socket flush, i.e. once per poll
  // iteration). Messages enter the per-edge replay log before they enter
  // the coalescer, so the write-ahead durability rule is untouched.
  std::size_t batch_bytes = 0;
  std::int64_t batch_flush_us = 0;
};

class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

class TcpListener {
 public:
  TcpListener() = default;

  // Binds and listens on host:port (numeric IPv4; port 0 = OS-assigned).
  // Throws std::runtime_error on failure.
  static TcpListener Bind(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  // The actually-bound port (resolves port 0 to the OS's choice).
  std::uint16_t port() const { return port_; }

  // Non-blocking accept: invalid ScopedFd when no connection is pending.
  // The accepted socket is non-blocking with TCP_NODELAY set.
  ScopedFd Accept();

  void Close() { fd_.reset(); }

 private:
  ScopedFd fd_;
  std::uint16_t port_ = 0;
};

// One established connection carrying wire frames. Reads feed a
// FrameReader; writes append to an outbound byte buffer flushed
// opportunistically (callers poll for POLLOUT while WantWrite()).
class FrameConn {
 public:
  FrameConn(ScopedFd fd, const TransportOptions& options)
      : fd_(std::move(fd)), options_(options) {}

  int fd() const { return fd_.get(); }
  bool open() const { return fd_.valid() && !failed_; }
  const std::string& error() const { return error_; }

  // Serializes `frame` onto the outbound buffer. Fails the connection if
  // the backlog exceeds the backpressure cap. Any coalescing batch is
  // encoded first, so frames never overtake earlier protocol messages.
  void SendFrame(const WireFrame& frame);

  // Enqueues one protocol message. With batching active (batch_bytes > 0
  // and a v4 peer) the message lands in the coalescing buffer; otherwise
  // it is sent as an ordinary kProtocol frame immediately.
  void QueueMessage(const Message& m);

  // Encodes the pending batch (if any) onto the outbound buffer now,
  // ignoring the flush deadline. Does not touch the socket.
  void FlushBatchNow();

  bool HasQueuedBatch() const { return batch_count_ > 0; }
  // Absolute NowUs() deadline of the pending batch; -1 when no batch is
  // pending or no timer is configured. Poll loops clamp their timeout to
  // the earliest deadline so a lone batch cannot stall until the next
  // unrelated wake-up.
  std::int64_t BatchDeadlineUs() const {
    return batch_count_ > 0 && options_.batch_flush_us > 0 ? batch_deadline_us_
                                                           : -1;
  }

  // Wire dialect of outbound frames (kWireVersion by default). A daemon
  // downgrades a peer connection to v2 when the peer's hello spoke v2, so
  // old endpoints keep decoding everything we send.
  void set_wire_version(std::uint8_t v) { wire_version_ = v; }
  std::uint8_t wire_version() const { return wire_version_; }

  // Appends pre-encoded (possibly deliberately malformed) frame bytes to
  // the outbound buffer. Used by fault injection to put a damaged frame on
  // the wire ahead of the codec; same backpressure rules as SendFrame.
  void SendRawBytes(const std::vector<std::uint8_t>& bytes);

  // Writes as much buffered data as the socket accepts. Returns false on
  // a fatal socket error (connection is failed). A pending batch whose
  // deadline has passed (or with no timer configured) is encoded first.
  bool Flush();
  bool WantWrite() const { return out_pos_ < out_.size(); }
  std::size_t OutboundBytes() const { return out_.size() - out_pos_; }

  // Reads all currently-available bytes into the frame reader. Returns
  // false on EOF or a fatal error (eof()/error() distinguish them).
  bool ReadAvailable();
  bool eof() const { return eof_; }

  // Next complete inbound frame; kNeedMore when none is buffered. A
  // malformed stream fails the connection.
  DecodeStatus NextFrame(WireFrame* frame);

  void Close() { fd_.reset(); }

  // Attaches byte/frame/backpressure counters. Null (the default)
  // disables instrumentation; the bundle must outlive the connection and
  // may be shared by every connection of one daemon.
  void set_metrics(obs::TransportMetrics* metrics) { obs_ = metrics; }

 private:
  void FailWith(std::string msg);
  void CheckBackpressure();

  ScopedFd fd_;
  TransportOptions options_;
  obs::TransportMetrics* obs_ = nullptr;
  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;
  // Coalescing buffer: concatenated message payloads awaiting one kBatch
  // wrapper (see TransportOptions::batch_bytes).
  std::vector<std::uint8_t> batch_payload_;
  std::uint32_t batch_count_ = 0;
  std::int64_t batch_deadline_us_ = -1;
  FrameReader reader_;
  std::uint8_t wire_version_ = kWireVersion;
  bool failed_ = false;
  bool eof_ = false;
  std::string error_;
};

// Establishes a connection to host:port, retrying with exponential backoff
// until options.connect_timeout_ms elapses. Blocks the calling thread (it
// is used during session setup, before the poll loops start). On failure
// returns an invalid fd and fills *error.
ScopedFd ConnectWithBackoff(const std::string& host, std::uint16_t port,
                            const TransportOptions& options,
                            std::string* error);

}  // namespace treeagg

#endif  // TREEAGG_NET_TRANSPORT_H_
