// Cluster configuration of the networked backend: one (tree, policy, op)
// experiment mapped onto a set of node daemons.
//
// The config names every daemon's address and assigns every tree node to
// exactly one daemon; a daemon may host many nodes (the tree's edge list
// then splits into intra-daemon edges, delivered through a local queue,
// and inter-daemon edges, delivered over TCP).
//
// Text format (treeagg-cluster-v1), one directive per line, '#' comments:
//
//   treeagg-cluster-v1
//   tree 0 0 1 1 2 2            # parent vector (tree/serialization.h)
//   policy RWW                  # any PolicyBySpec() string
//   op sum                      # OpByName()
//   ghost 1                     # ghost logging on/off (default 1)
//   daemon 0 127.0.0.1 4701     # id host port — one line per daemon
//   daemon 1 127.0.0.1 4702
//   place block                 # block | rr | subtree — or explicit:
//   # assign 3 1                # node 3 hosted by daemon 1
//
// Port 0 is allowed (OS-assigned); it is what the in-process LocalCluster
// uses, with the resolved ports distributed before the daemons start.
#ifndef TREEAGG_NET_CLUSTER_H_
#define TREEAGG_NET_CLUSTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace treeagg {

// DFS preorder of the tree given as a parent vector (parent[u] < u for
// u > 0; children visited in ascending id order). O(n), iterative — safe
// on path-shaped trees of 10^6 nodes. Shared by "subtree" placement and
// the daemon's reactor sharding, so both cut the tree along the same
// contiguous-preorder blocks.
std::vector<NodeId> DfsPreorder(const std::vector<NodeId>& tree_parent);

// node -> daemon assignment. "block" gives contiguous node-id ranges;
// "rr" round-robins (adversarial placement: almost every tree edge
// crosses the network); "subtree" gives contiguous DFS-preorder blocks —
// every daemon hosts O(daemons) partial subtrees, so the number of
// cross-daemon edges stays near daemons-1 regardless of tree size. This
// overload knows the tree shape and supports all three modes.
std::vector<int> AssignNodes(const std::vector<NodeId>& tree_parent,
                             int daemons, const std::string& placement);

// Shape-blind overload kept for callers that only know the node count;
// supports "block" and "rr" ("subtree" needs the parent vector).
std::vector<int> AssignNodes(NodeId n, int daemons,
                             const std::string& placement);

struct ClusterConfig {
  struct DaemonAddr {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
  };

  std::vector<NodeId> tree_parent;  // parent vector of the shared tree
  std::string policy = "RWW";
  std::string op = "sum";
  bool ghost_logging = true;
  std::vector<DaemonAddr> daemons;
  std::vector<int> node_daemon;  // node -> daemon index

  int NumDaemons() const { return static_cast<int>(daemons.size()); }
  NodeId NumNodes() const { return static_cast<NodeId>(tree_parent.size()); }

  // Throws std::invalid_argument on an inconsistent config (no daemons,
  // assignment out of range or wrong length, bad parent vector shape).
  void Validate() const;
};

// Parses the text format above. Throws std::invalid_argument with a
// message naming the offending line.
ClusterConfig ParseClusterConfig(std::istream& in);

void WriteClusterConfig(std::ostream& out, const ClusterConfig& config);

}  // namespace treeagg

#endif  // TREEAGG_NET_CLUSTER_H_
