// NetDriver: the workload client of the networked backend.
//
// The driver connects to every daemon of a cluster, injects write/combine
// requests over the wire, and records the same consistency::History the
// sim and runtime backends produce, so the Section 5 checkers run on
// networked executions unchanged. A request is routed to the daemon
// hosting its node; per-request answers come back as kWriteDone /
// kCombineDone frames (with the ghost gather snapshot and log prefix
// piggybacked on combines).
//
// Quiescence: the daemons keep monotone sent/received counters of protocol
// messages, snapshotted by kStatusReq/kStatusResp. WaitQuiescent() takes
// global snapshots until two consecutive ones are identical with
// sum(sent) == sum(received) and no queued local deliveries — because the
// counters are monotone and each daemon handles a frame to completion
// before answering a status probe, that pair of snapshots proves no
// protocol message was in flight between them.
//
// Every wait is bounded by TransportOptions::io_timeout_ms and throws
// std::runtime_error on timeout or a failed daemon connection — a harness
// bug hangs a test for seconds, not forever.
#ifndef TREEAGG_NET_DRIVER_H_
#define TREEAGG_NET_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "consistency/causal_checker.h"  // NodeGhostState
#include "consistency/history.h"
#include "net/cluster.h"
#include "net/transport.h"
#include "net/wire.h"
#include "query/snapshot.h"
#include "sim/trace.h"

namespace treeagg {

class NetDriver {
 public:
  struct Options {
    TransportOptions transport;
    // Upper bound on WaitQuiescent(): a dead or hung daemon fails the wait
    // with a one-line diagnostic naming it instead of hanging the caller.
    // Generous by default (recovery from injected faults takes reconnect
    // backoffs); tests tighten it.
    std::int64_t quiescence_deadline_ms = 120000;
  };

  explicit NetDriver(ClusterConfig config);
  NetDriver(ClusterConfig config, Options options);
  ~NetDriver();

  NetDriver(const NetDriver&) = delete;
  NetDriver& operator=(const NetDriver&) = delete;

  // Connects to every daemon (with backoff) and identifies itself with
  // kDriverHello. Throws std::runtime_error on failure.
  void Connect();

  // Injects a request at `node`; returns its history id (also the wire
  // request id / combine token). Requests may be pipelined: injection does
  // not wait for completion.
  ReqId InjectWrite(NodeId node, Real arg);
  ReqId InjectCombine(NodeId node);

  // Blocks until every injected request has completed.
  void WaitAllCompleted();
  // Blocks until request `id` has completed (other completions arriving
  // first are recorded as usual).
  void WaitCompleted(ReqId id);
  // Blocks until the whole cluster is quiescent (see header comment).
  // Outstanding combines also hold messages in flight, so callers normally
  // WaitAllCompleted() first.
  void WaitQuiescent();

  // Snapshot read: sends kQuery to the daemon hosting `node` and blocks
  // for its kQueryResp. Off-ledger — no history record is created, no
  // mechanism message is generated, and the Figure-2 counters don't move;
  // the answer is whatever the node's seqlock slot published last.
  query::QueryAnswer QueryNode(NodeId node);

  struct HarvestResult {
    std::vector<NodeGhostState> ghosts;  // every node, ordered by id
    MessageCounts counts;                // summed over daemons (send side)
  };
  // Collects each node's final ghost write-log and the per-type message
  // totals. Call after WaitAllCompleted()+WaitQuiescent().
  HarvestResult Harvest();

  // --- placement / migration (wire v6) ----------------------------------
  // Sums the per-daemon per-edge traffic counters: [u] = protocol messages
  // that rode node u's parent edge since the daemons started ([0] is
  // always 0 — the root has no parent edge). Call at quiescence; feeds
  // place::OptimizePlacement.
  std::vector<std::uint64_t> HarvestTraffic();

  // One migrated node's durable state in transit between daemons.
  struct MigrationBlob {
    std::vector<std::uint8_t> state;  // EncodeNodeStateBlob payload
    std::uint64_t epoch = 0;          // source slot's published query epoch
    // False when the addressed daemon no longer hosts the node (a retry
    // after the commit already applied): skip MigrateIn, the target
    // already has it.
    bool hosted = false;
  };
  // The three steps of one node move, each a blocking RPC; all require a
  // quiescent cluster (no protocol message in flight). MigrateOut asks the
  // node's current owner (per this driver's map) for its state — the owner
  // KEEPS hosting, so the call is repeatable. MigrateIn installs the blob
  // on `target` (idempotent). MigrateCommit releases the node at the owner
  // and repoints this driver's own map at `target`.
  MigrationBlob MigrateOut(NodeId node);
  void MigrateIn(NodeId node, int target, const MigrationBlob& blob);
  void MigrateCommit(NodeId node, int target);
  // Broadcasts this driver's full node -> daemon map to every daemon
  // (kPlacementUpdate) and waits for all acknowledgements. Sending the
  // full map, not a diff, makes a retry after a partial failure converge:
  // moves committed before a crash are already in the map.
  void BroadcastPlacement();
  // Migrates every node whose current assignment differs from `plan`
  // (size = tree size), then broadcasts the new map. Returns the number of
  // nodes moved; 0 moves sends no frame at all (the no-op re-placement is
  // free, keeping the Figure-2 ledger untouched). Safe to re-call with the
  // same plan after restarting a daemon that died mid-sequence.
  std::size_t ApplyPlacement(const std::vector<int>& plan);

  // Sends kShutdown to every daemon and closes the connections. Idempotent.
  void Shutdown();

  // --- crash-restart support (chaos harness) ----------------------------
  // Marks daemon `d` down: its connection is closed and PumpOnce stops
  // treating the dead connection as fatal. Injections to its nodes throw
  // until ReconnectDaemon().
  void MarkDaemonDown(int d);
  // Re-establishes the connection to a restarted daemon `d` (kDriverHello
  // handshake) and clears its down mark. Throws on failure.
  void ReconnectDaemon(int d);
  // Re-sends every incomplete request hosted by one of `daemons`, in id
  // order, WITHOUT creating new history records: frames to a killed daemon
  // may have died with its connection, and the daemon-side state restore
  // plus this re-injection make the pair exactly-once (duplicate
  // completions are ignored by DispatchFrame). Returns how many requests
  // were re-sent.
  std::size_t ReinjectIncomplete(const std::vector<int>& daemons);
  // The driver's logical clock (initiation/completion sequence). The chaos
  // harness records fault windows in this clock for the convergence
  // checker's outside-window restriction.
  std::int64_t clock() const { return clock_; }

  const History& history() const { return history_; }
  const ClusterConfig& config() const { return config_; }
  // Total protocol messages sent, from the last status snapshot.
  std::uint64_t TotalMessages() const { return total_messages_; }

 private:
  FrameConn* ConnForNode(NodeId node);
  FrameConn* ConnForDaemon(int d);
  // Blocks until `daemon` acknowledged the pending migration RPC.
  void WaitMigrateDone(int daemon, const std::string& what);
  // Polls all connections once (bounded by timeout_ms), reading frames and
  // dispatching them. Throws on connection failure.
  void PumpOnce(int timeout_ms);
  void DispatchFrame(std::size_t daemon, WireFrame frame);
  // Sends kStatusReq(probe) everywhere and pumps until every daemon echoed
  // `probe`. Returns the per-daemon payloads.
  std::vector<StatusPayload> SnapshotStatus();
  void FlushAll();
  [[noreturn]] void Timeout(const std::string& what);

  ClusterConfig config_;
  Options options_;
  std::vector<std::unique_ptr<FrameConn>> conns_;  // by daemon id
  std::vector<char> down_;  // daemons marked down by MarkDaemonDown
  History history_;
  std::int64_t clock_ = 0;  // initiation/completion sequence numbers
  std::size_t outstanding_ = 0;

  std::uint64_t next_probe_ = 1;
  std::uint64_t current_probe_ = 0;  // probe being collected, 0 = none
  // Query tokens live beside the history ids (responses are matched by
  // frame type + token, never through the history).
  ReqId next_query_req_ = 1;
  ReqId pending_query_ = kNoRequest;
  bool query_answered_ = false;
  query::QueryAnswer query_answer_;
  std::vector<StatusPayload> status_;
  std::vector<bool> status_seen_;

  // Migration RPC tokens share nothing with history ids: responses are
  // matched by frame type + token, per-daemon acks by the seen vector.
  ReqId next_migrate_req_ = 1;
  ReqId pending_migrate_ = kNoRequest;
  bool migrate_state_seen_ = false;
  MigrationBlob migrate_blob_;
  std::vector<bool> migrate_done_seen_;
  bool collecting_traffic_ = false;
  std::vector<bool> traffic_seen_;
  std::vector<std::uint64_t> traffic_;

  bool collecting_harvest_ = false;
  std::vector<bool> harvest_seen_;
  HarvestResult harvest_;
  std::uint64_t total_messages_ = 0;
  bool shut_down_ = false;
};

}  // namespace treeagg

#endif  // TREEAGG_NET_DRIVER_H_
