#include "net/faulty_transport.h"

#include <algorithm>

namespace treeagg {
namespace {

void PatchLength(std::vector<std::uint8_t>* bytes, std::uint32_t body_len) {
  (*bytes)[0] = static_cast<std::uint8_t>(body_len);
  (*bytes)[1] = static_cast<std::uint8_t>(body_len >> 8);
  (*bytes)[2] = static_cast<std::uint8_t>(body_len >> 16);
  (*bytes)[3] = static_cast<std::uint8_t>(body_len >> 24);
}

}  // namespace

std::vector<std::uint8_t> TruncatedFrame(const WireFrame& frame,
                                         std::size_t drop_bytes) {
  std::vector<std::uint8_t> bytes = EncodeFrame(frame);
  const std::size_t body = bytes.size() - 4;
  // Keep the magic/version/type header; drop at least one payload byte
  // when there is one (a payload-free frame keeps its header and stays
  // valid — callers wanting guaranteed breakage pass payload frames).
  const std::size_t cut = std::min(drop_bytes, body - 3);
  bytes.resize(bytes.size() - cut);
  PatchLength(&bytes, static_cast<std::uint32_t>(body - cut));
  return bytes;
}

std::vector<std::uint8_t> OversizedLengthFrame(const WireFrame& frame) {
  std::vector<std::uint8_t> bytes = EncodeFrame(frame);
  PatchLength(&bytes, static_cast<std::uint32_t>(kMaxFrameLen) + 1);
  return bytes;
}

std::vector<std::uint8_t> DuplicatedFrame(const WireFrame& frame) {
  std::vector<std::uint8_t> bytes = EncodeFrame(frame);
  const std::size_t n = bytes.size();
  bytes.resize(2 * n);
  std::copy(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(n),
            bytes.begin() + static_cast<std::ptrdiff_t>(n));
  return bytes;
}

PeerFaultInjector::Action PeerFaultInjector::Decide() {
  if (!armed()) return Action::kNone;
  if (rng_.NextBool(options_.corrupt_probability)) {
    corrupted_.fetch_add(1, std::memory_order_relaxed);
    return Action::kCorrupt;
  }
  if (rng_.NextBool(options_.sever_probability)) {
    severed_.fetch_add(1, std::memory_order_relaxed);
    return Action::kSever;
  }
  return Action::kNone;
}

void PeerFaultInjector::ArmLat(int peer) {
  const auto it = lat_armed_.find(peer);
  if (it != lat_armed_.end()) it->second.store(true, std::memory_order_relaxed);
}

void PeerFaultInjector::DisarmLat(int peer) {
  const auto it = lat_armed_.find(peer);
  if (it != lat_armed_.end()) {
    it->second.store(false, std::memory_order_relaxed);
  }
}

void PeerFaultInjector::DisarmAll() {
  Disarm();
  DisarmGray();
  for (auto& [peer, flag] : lat_armed_) {
    flag.store(false, std::memory_order_relaxed);
  }
}

std::int64_t PeerFaultInjector::DelayUsFor(int peer) {
  std::int64_t us = 0;
  if (options_.gray.valid() && gray_armed_.load(std::memory_order_relaxed)) {
    us += rng_.NextInt(options_.gray.min_us, options_.gray.max_us);
  }
  const auto armed = lat_armed_.find(peer);
  if (armed != lat_armed_.end() &&
      armed->second.load(std::memory_order_relaxed)) {
    const DelayProfile& profile = options_.lat.at(peer);
    us += rng_.NextInt(profile.min_us, profile.max_us);
  }
  if (us > 0) delayed_.fetch_add(1, std::memory_order_relaxed);
  return us;
}

std::vector<std::uint8_t> PeerFaultInjector::Corrupt(const WireFrame& frame) {
  // Both mutations are detected before any payload field is trusted:
  // truncation underruns the payload cursor (kBadPayload), the oversized
  // length is rejected straight off the prefix (kBadLength).
  if (rng_.NextBool(0.5)) {
    return TruncatedFrame(frame, 1 + rng_.NextBounded(8));
  }
  return OversizedLengthFrame(frame);
}

}  // namespace treeagg
