#include "net/durability.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace treeagg {
namespace {

// --- little-endian primitives (mirrors the wire codec; the payload is a
// different container format, so the helpers are deliberately local) -----

void PutU8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutI32(std::vector<std::uint8_t>* out, std::int32_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
}

void PutI64(std::vector<std::uint8_t>* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutF64(std::vector<std::uint8_t>* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Bounds-checked payload cursor; exposes the raw position so embedded wire
// frames can be handed to DecodeFrame in place.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return len_ - pos_; }
  const std::uint8_t* here() const { return data_ + pos_; }
  void Skip(std::size_t n) {
    if (remaining() < n) {
      Fail<int>();
    } else {
      pos_ += n;
    }
  }

  std::uint8_t GetU8() {
    if (remaining() < 1) return Fail<std::uint8_t>();
    return data_[pos_++];
  }

  std::uint32_t GetU32() {
    if (remaining() < 4) return Fail<std::uint32_t>();
    std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                      static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                      static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                      static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t GetU64() {
    const std::uint64_t lo = GetU32();
    const std::uint64_t hi = GetU32();
    return lo | hi << 32;
  }

  std::int32_t GetI32() { return static_cast<std::int32_t>(GetU32()); }
  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  double GetF64() {
    const std::uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // A count whose elements occupy at least `elem_size` bytes each: rejects
  // counts the remaining payload cannot possibly hold (a corrupted count
  // must never drive a giant reserve()).
  std::uint32_t GetCount(std::size_t elem_size) {
    const std::uint32_t n = GetU32();
    if (!ok_ || static_cast<std::uint64_t>(n) * elem_size > remaining()) {
      return Fail<std::uint32_t>();
    }
    return n;
  }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    pos_ = len_;
    return T{};
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

constexpr std::size_t kMagicLen = 16;
constexpr std::size_t kHeaderLen = kMagicLen + 4 + 8 + 4;

void EncodeNodeState(std::vector<std::uint8_t>* out,
                     const LeaseNode::DurableState& s) {
  PutF64(out, s.val);
  PutI64(out, s.upcntr);
  PutU32(out, static_cast<std::uint32_t>(s.neighbors.size()));
  for (const auto& nb : s.neighbors) {
    PutI32(out, nb.id);
    PutU8(out, nb.taken ? 1 : 0);
    PutU8(out, nb.granted ? 1 : 0);
    PutF64(out, nb.aval);
    PutU32(out, static_cast<std::uint32_t>(nb.uaw.size()));
    for (const UpdateId id : nb.uaw) PutI64(out, id);
    PutU32(out, static_cast<std::uint32_t>(nb.snt_updates.size()));
    for (const auto& [rcvid, sntid] : nb.snt_updates) {
      PutI64(out, rcvid);
      PutI64(out, sntid);
    }
  }
  PutU32(out, static_cast<std::uint32_t>(s.pndg.size()));
  for (const auto& p : s.pndg) {
    PutI32(out, p.requester);
    PutU32(out, static_cast<std::uint32_t>(p.waiting.size()));
    for (const NodeId w : p.waiting) PutI32(out, w);
  }
  PutU32(out, static_cast<std::uint32_t>(s.local_tokens.size()));
  for (const CombineToken t : s.local_tokens) PutI64(out, t);
  PutU32(out, static_cast<std::uint32_t>(s.ghost_log.size()));
  for (const GhostWrite& w : s.ghost_log) {
    PutI64(out, w.id);
    PutI32(out, w.node);
  }
}

bool DecodeNodeState(Cursor* c, LeaseNode::DurableState* s) {
  s->val = c->GetF64();
  s->upcntr = c->GetI64();
  const std::uint32_t nnbrs = c->GetCount(18);
  if (!c->ok()) return false;
  s->neighbors.resize(nnbrs);
  for (auto& nb : s->neighbors) {
    nb.id = c->GetI32();
    nb.taken = c->GetU8() != 0;
    nb.granted = c->GetU8() != 0;
    nb.aval = c->GetF64();
    const std::uint32_t nuaw = c->GetCount(8);
    if (!c->ok()) return false;
    nb.uaw.resize(nuaw);
    for (auto& id : nb.uaw) id = c->GetI64();
    const std::uint32_t nsnt = c->GetCount(16);
    if (!c->ok()) return false;
    nb.snt_updates.resize(nsnt);
    for (auto& [rcvid, sntid] : nb.snt_updates) {
      rcvid = c->GetI64();
      sntid = c->GetI64();
    }
  }
  const std::uint32_t npndg = c->GetCount(8);
  if (!c->ok()) return false;
  s->pndg.resize(npndg);
  for (auto& p : s->pndg) {
    p.requester = c->GetI32();
    const std::uint32_t nwait = c->GetCount(4);
    if (!c->ok()) return false;
    p.waiting.resize(nwait);
    for (auto& w : p.waiting) w = c->GetI32();
  }
  const std::uint32_t ntokens = c->GetCount(8);
  if (!c->ok()) return false;
  s->local_tokens.resize(ntokens);
  for (auto& t : s->local_tokens) t = c->GetI64();
  const std::uint32_t nghost = c->GetCount(12);
  if (!c->ok()) return false;
  s->ghost_log.resize(nghost);
  for (auto& w : s->ghost_log) {
    w.id = c->GetI64();
    w.node = c->GetI32();
  }
  return c->ok();
}

// Embedded wire frame: decoded in place by the wire codec, then skipped.
bool DecodeEmbeddedFrame(Cursor* c, WireFrame* frame) {
  const DecodeResult r = DecodeFrame(c->here(), c->remaining());
  if (r.status != DecodeStatus::kOk) return false;
  *frame = r.frame;
  c->Skip(r.consumed);
  return c->ok();
}

bool DecodePayload(Cursor* c, DaemonDurableState* state) {
  const std::uint32_t nnodes = c->GetCount(4);
  if (!c->ok()) return false;
  state->nodes.resize(nnodes);
  for (auto& [id, ns] : state->nodes) {
    id = c->GetI32();
    if (!DecodeNodeState(c, &ns)) return false;
  }
  state->sent = c->GetU64();
  state->received = c->GetU64();
  state->counts.probes = c->GetI64();
  state->counts.responses = c->GetI64();
  state->counts.updates = c->GetI64();
  state->counts.releases = c->GetI64();
  const std::uint32_t nsessions = c->GetCount(24);
  if (!c->ok()) return false;
  state->sessions.resize(nsessions);
  for (auto& ss : state->sessions) {
    ss.peer = c->GetI32();
    ss.log_base = c->GetU64();
    ss.processed = c->GetU64();
    const std::uint32_t nlog = c->GetCount(7);  // min wire frame: 4+3 bytes
    if (!c->ok()) return false;
    ss.log.resize(nlog);
    for (auto& f : ss.log) {
      if (!DecodeEmbeddedFrame(c, &f)) return false;
    }
  }
  const std::uint32_t nqueue = c->GetCount(7);
  if (!c->ok()) return false;
  state->local_queue.resize(nqueue);
  for (auto& m : state->local_queue) {
    WireFrame f;
    if (!DecodeEmbeddedFrame(c, &f) || f.type != FrameType::kProtocol) {
      return false;
    }
    m = std::move(f.msg);
  }
  // Trailing-optional placement map: absent in pre-migration snapshots
  // (which end exactly here), always present in new ones.
  if (c->remaining() > 0) {
    const std::uint32_t nmap = c->GetCount(4);
    if (!c->ok()) return false;
    state->node_daemon.resize(nmap);
    for (auto& d : state->node_daemon) d = c->GetI32();
  }
  return c->ok() && c->remaining() == 0;
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// mkdir -p: every component of `dir` (EEXIST is success).
bool EnsureDir(const std::string& dir, std::string* error) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) partial.push_back('/');
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      *error = "mkdir " + partial + ": " + std::strerror(errno);
      return false;
    }
  }
  return true;
}

bool FsyncDir(const std::string& dir, std::string* error) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    *error = "open dir " + dir + ": " + std::strerror(errno);
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok) *error = Errno("fsync dir");
  ::close(fd);
  return ok;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t len) {
  // Table-driven CRC-32 (reflected 0x04C11DB7, as in zlib); the table is
  // built once on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool DurableStatesEqual(const DaemonDurableState& a,
                        const DaemonDurableState& b) {
  if (a.nodes != b.nodes || a.sent != b.sent || a.received != b.received ||
      !(a.counts == b.counts) || a.sessions.size() != b.sessions.size() ||
      a.local_queue.size() != b.local_queue.size() ||
      a.node_daemon != b.node_daemon) {
    return false;
  }
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const auto& sa = a.sessions[i];
    const auto& sb = b.sessions[i];
    if (sa.peer != sb.peer || sa.log_base != sb.log_base ||
        sa.processed != sb.processed || sa.log.size() != sb.log.size()) {
      return false;
    }
    for (std::size_t j = 0; j < sa.log.size(); ++j) {
      if (!FramesEqual(sa.log[j], sb.log[j])) return false;
    }
  }
  for (std::size_t i = 0; i < a.local_queue.size(); ++i) {
    WireFrame fa, fb;
    fa.type = fb.type = FrameType::kProtocol;
    fa.msg = a.local_queue[i];
    fb.msg = b.local_queue[i];
    if (!FramesEqual(fa, fb)) return false;
  }
  return true;
}

std::vector<std::uint8_t> EncodeSnapshot(const DaemonDurableState& state,
                                         int daemon_id) {
  std::vector<std::uint8_t> payload;
  PutU32(&payload, static_cast<std::uint32_t>(state.nodes.size()));
  for (const auto& [id, ns] : state.nodes) {
    PutI32(&payload, id);
    EncodeNodeState(&payload, ns);
  }
  PutU64(&payload, state.sent);
  PutU64(&payload, state.received);
  PutI64(&payload, state.counts.probes);
  PutI64(&payload, state.counts.responses);
  PutI64(&payload, state.counts.updates);
  PutI64(&payload, state.counts.releases);
  PutU32(&payload, static_cast<std::uint32_t>(state.sessions.size()));
  for (const auto& ss : state.sessions) {
    PutI32(&payload, ss.peer);
    PutU64(&payload, ss.log_base);
    PutU64(&payload, ss.processed);
    PutU32(&payload, static_cast<std::uint32_t>(ss.log.size()));
    for (const WireFrame& f : ss.log) AppendFrame(&payload, f);
  }
  PutU32(&payload, static_cast<std::uint32_t>(state.local_queue.size()));
  for (const Message& m : state.local_queue) {
    WireFrame f;
    f.type = FrameType::kProtocol;
    f.msg = m;
    AppendFrame(&payload, f);
  }
  if (!state.node_daemon.empty()) {
    PutU32(&payload, static_cast<std::uint32_t>(state.node_daemon.size()));
    for (const int d : state.node_daemon) PutI32(&payload, d);
  }

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderLen + payload.size());
  out.insert(out.end(), kSnapshotMagic, kSnapshotMagic + kMagicLen);
  PutU32(&out, static_cast<std::uint32_t>(daemon_id));
  PutU64(&out, payload.size());
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool DecodeSnapshot(const std::uint8_t* data, std::size_t len,
                    DaemonDurableState* state, int* daemon_id,
                    std::string* error) {
  if (len < kHeaderLen) {
    *error = "snapshot truncated (no header)";
    return false;
  }
  if (std::memcmp(data, kSnapshotMagic, kMagicLen) != 0) {
    *error = "bad snapshot magic (not a treeagg-snap-v1 file)";
    return false;
  }
  Cursor header(data + kMagicLen, kHeaderLen - kMagicLen);
  const std::uint32_t id = header.GetU32();
  const std::uint64_t payload_len = header.GetU64();
  const std::uint32_t crc = header.GetU32();
  if (payload_len != len - kHeaderLen) {
    *error = "snapshot truncated (payload length mismatch)";
    return false;
  }
  const std::uint8_t* payload = data + kHeaderLen;
  if (Crc32(payload, static_cast<std::size_t>(payload_len)) != crc) {
    *error = "snapshot checksum mismatch (corrupted file)";
    return false;
  }
  DaemonDurableState decoded;
  Cursor c(payload, static_cast<std::size_t>(payload_len));
  if (!DecodePayload(&c, &decoded)) {
    *error = "snapshot payload inconsistent";
    return false;
  }
  *state = std::move(decoded);
  *daemon_id = static_cast<int>(id);
  return true;
}

std::string SnapshotPath(const std::string& dir) {
  return dir + "/daemon.snap";
}

std::string SnapshotTempPath(const std::string& dir) {
  return dir + "/daemon.snap.tmp";
}

bool SaveSnapshot(const std::string& dir, const DaemonDurableState& state,
                  int daemon_id, std::string* error) {
  if (!EnsureDir(dir, error)) return false;
  const std::vector<std::uint8_t> bytes = EncodeSnapshot(state, daemon_id);
  const std::string tmp = SnapshotTempPath(dir);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Errno("write");
      ::close(fd);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    *error = Errno("fsync");
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), SnapshotPath(dir).c_str()) != 0) {
    *error = Errno("rename");
    return false;
  }
  return FsyncDir(dir, error);
}

SnapshotLoad LoadSnapshot(const std::string& dir, DaemonDurableState* state,
                          int expected_daemon_id, std::string* error) {
  const std::string path = SnapshotPath(dir);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return SnapshotLoad::kNotFound;
    *error = "open " + path + ": " + std::strerror(errno);
    return SnapshotLoad::kError;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Errno("read");
      ::close(fd);
      return SnapshotLoad::kError;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  int daemon_id = -1;
  if (!DecodeSnapshot(bytes.data(), bytes.size(), state, &daemon_id, error)) {
    return SnapshotLoad::kError;
  }
  if (daemon_id != expected_daemon_id) {
    *error = "snapshot belongs to daemon " + std::to_string(daemon_id) +
             ", expected " + std::to_string(expected_daemon_id) +
             " (two daemons sharing one state dir?)";
    return SnapshotLoad::kError;
  }
  return SnapshotLoad::kOk;
}

void RemoveSnapshot(const std::string& dir) {
  ::unlink(SnapshotPath(dir).c_str());
  ::unlink(SnapshotTempPath(dir).c_str());
}

std::vector<std::uint8_t> EncodeNodeStateBlob(
    const LeaseNode::DurableState& s) {
  std::vector<std::uint8_t> out;
  EncodeNodeState(&out, s);
  return out;
}

bool DecodeNodeStateBlob(const std::uint8_t* data, std::size_t len,
                         LeaseNode::DurableState* s) {
  Cursor c(data, len);
  LeaseNode::DurableState decoded;
  if (!DecodeNodeState(&c, &decoded) || !c.ok() || c.remaining() != 0) {
    return false;
  }
  *s = std::move(decoded);
  return true;
}

}  // namespace treeagg
