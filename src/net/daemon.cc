#include "net/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "core/aggregate_op.h"
#include "core/extra_policies.h"
#include "obs/http.h"
#include "tree/topology.h"

namespace treeagg {
namespace {

// Which reactor the current thread is: 0 on the primary (and on every
// thread that never entered WorkerLoop), the reactor index on a worker.
// RouteSend keys its path choice on this.
thread_local int tls_reactor = 0;

}  // namespace

void NodeDaemon::NetTransport::Send(Message m) {
  daemon_->RouteSend(std::move(m));
}

NodeDaemon::NodeDaemon(int daemon_id, ClusterConfig config, Options options)
    : daemon_id_(daemon_id),
      config_(std::move(config)),
      options_(std::move(options)),
      transport_(this) {
  config_.Validate();
  if (daemon_id_ < 0 || daemon_id_ >= config_.NumDaemons()) {
    throw std::invalid_argument("NodeDaemon: daemon id " +
                                std::to_string(daemon_id_) +
                                " not in the cluster config");
  }
  tree_ = std::make_unique<Tree>(config_.tree_parent);
  peers_.resize(config_.daemons.size());
  sessions_.resize(config_.daemons.size());
  held_.resize(config_.daemons.size());
  // Value-initialized: every direction starts un-paused.
  pause_send_ = std::make_unique<std::atomic<bool>[]>(config_.daemons.size());
  RecomputePeers();
  // Value-initialized: every edge counter starts at zero.
  edge_traffic_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(tree_->size()));
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error("NodeDaemon: pipe() failed");
  }
  for (const int fd : stop_pipe_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  if (options_.metrics || options_.metrics_port >= 0) SetUpMetrics();
}

void NodeDaemon::RecomputePeers() {
  // Peer daemons this one shares a tree edge with, under the current
  // placement map.
  peer_ids_.clear();
  for (const Edge& e : tree_->edges()) {
    const int du = config_.node_daemon[static_cast<std::size_t>(e.u)];
    const int dv = config_.node_daemon[static_cast<std::size_t>(e.v)];
    if (du == dv) continue;
    if (du == daemon_id_) peer_ids_.push_back(dv);
    if (dv == daemon_id_) peer_ids_.push_back(du);
  }
  std::sort(peer_ids_.begin(), peer_ids_.end());
  peer_ids_.erase(std::unique(peer_ids_.begin(), peer_ids_.end()),
                  peer_ids_.end());
}

void NodeDaemon::SetUpMetrics() {
  registry_ = std::make_unique<obs::MetricsRegistry>();
  peer_msgs_.assign(config_.daemons.size(), nullptr);
  peer_bytes_.assign(config_.daemons.size(), nullptr);
  const std::vector<obs::Label> base = {
      {"daemon", std::to_string(daemon_id_)}};
  proto_metrics_ = obs::ProtocolMetrics::Register(*registry_, base);
  transport_metrics_ = obs::TransportMetrics::Register(*registry_, base);
  g_local_queue_ = registry_->AddGauge(
      "treeagg_daemon_local_queue_depth",
      "Intra-daemon messages waiting in the local FIFO.", base);
  g_replay_log_ = registry_->AddGauge(
      "treeagg_daemon_replay_log_frames",
      "Un-GC'd frames across all peer-session replay logs.", base);
  g_replay_log_hwm_ = registry_->AddGauge(
      "treeagg_daemon_replay_log_hwm",
      "Largest replay-log length any peer session ever reached.", base);
  c_snapshots_ = registry_->AddCounter(
      "treeagg_daemon_snapshots_written_total",
      "Durable state snapshots persisted to the state dir.", base);
  h_frame_ms_ = registry_->AddHistogram(
      "treeagg_daemon_frame_handle_ms",
      "Wall time to handle one inbound frame to completion, including "
      "draining the intra-daemon messages it triggered.",
      obs::Histogram::DefaultLatencyBoundsMs(), base);
  query_metrics_ = obs::QueryMetrics::Register(*registry_, base);
}

void NodeDaemon::EnsurePeerCounters(int peer) {
  if (peer_msgs_[static_cast<std::size_t>(peer)] != nullptr) return;
  const std::vector<obs::Label> labels = {
      {"daemon", std::to_string(daemon_id_)},
      {"peer", std::to_string(peer)}};
  peer_msgs_[static_cast<std::size_t>(peer)] = registry_->AddCounter(
      "treeagg_peer_messages_sent_total",
      "Protocol messages routed to this peer daemon (counted at the "
      "replay-log append, so resume retransmissions are not "
      "double-counted).",
      labels);
  peer_bytes_[static_cast<std::size_t>(peer)] = registry_->AddCounter(
      "treeagg_peer_bytes_sent_total",
      "Encoded bytes of the protocol messages routed to this peer daemon "
      "(unbatched v6 frame size).",
      labels);
}

std::unique_ptr<FrameConn> NodeDaemon::NewFrameConn(ScopedFd fd) {
  auto conn = std::make_unique<FrameConn>(std::move(fd), options_.transport);
  if (registry_ != nullptr) conn->set_metrics(&transport_metrics_);
  return conn;
}

std::unique_ptr<FrameConn> NodeDaemon::TakePending(FrameConn* conn) {
  for (PendingConn& p : pending_) {
    if (p.conn.get() == conn) {
      std::unique_ptr<FrameConn> owned = std::move(p.conn);
      pending_.erase(pending_.begin() + (&p - pending_.data()));
      return owned;
    }
  }
  return nullptr;
}

void NodeDaemon::ErasePending(FrameConn* conn) { TakePending(conn); }

NodeDaemon::~NodeDaemon() {
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void NodeDaemon::Bind() {
  const ClusterConfig::DaemonAddr& addr =
      config_.daemons[static_cast<std::size_t>(daemon_id_)];
  listener_ = TcpListener::Bind(addr.host, addr.port);
  if (options_.metrics_port >= 0) {
    metrics_listener_ = TcpListener::Bind(
        addr.host, static_cast<std::uint16_t>(options_.metrics_port));
  }
}

std::uint16_t NodeDaemon::BoundPort() const { return listener_.port(); }

std::uint16_t NodeDaemon::MetricsPort() const {
  return metrics_listener_.valid() ? metrics_listener_.port() : 0;
}

void NodeDaemon::SetResolvedPorts(const std::vector<std::uint16_t>& ports) {
  if (ports.size() != config_.daemons.size()) {
    throw std::invalid_argument("SetResolvedPorts: wrong port count");
  }
  for (std::size_t d = 0; d < ports.size(); ++d) {
    config_.daemons[d].port = ports[d];
  }
}

void NodeDaemon::RequestStop() {
  stop_requested_.store(true);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void NodeDaemon::RequestSeverPeer(int peer) {
  sever_peer_.store(peer);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void NodeDaemon::RequestPauseSend(int peer, bool paused) {
  if (peer < 0 || peer >= static_cast<int>(config_.daemons.size())) return;
  pause_send_[static_cast<std::size_t>(peer)].store(paused,
                                                    std::memory_order_relaxed);
  // Wake the poll loop so a resume releases the held frames promptly.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void NodeDaemon::Fail(std::string why) {
  if (error_.empty()) error_ = std::move(why);
  shutdown_ = true;
}

void NodeDaemon::BuildNodes() {
  const PolicyFactory factory = PolicyBySpec(config_.policy);
  const AggregateOp& op = OpByName(config_.op);
  // Idempotent: the restored-map adoption in ApplyRestore re-runs this
  // after the placement map changed, dropping nodes built from the stale
  // config.
  nodes_.clear();
  nodes_.resize(static_cast<std::size_t>(tree_->size()));
  // Snapshot slots for the query tier: one per hosted node, so the table
  // cost scales with this daemon's share of the tree, not the whole tree.
  snap_index_.assign(static_cast<std::size_t>(tree_->size()), -1);
  std::int32_t hosted = 0;
  for (NodeId u = 0; u < tree_->size(); ++u) {
    if (HostsNode(u)) snap_index_[static_cast<std::size_t>(u)] = hosted++;
  }
  snapshots_ =
      std::make_unique<query::SnapshotTable>(static_cast<std::size_t>(hosted));
  for (NodeId u = 0; u < tree_->size(); ++u) {
    if (!HostsNode(u)) continue;
    const std::vector<NodeId> nbrs = tree_->neighbors(u).ToVector();
    nodes_[static_cast<std::size_t>(u)] = std::make_unique<LeaseNode>(
        u, nbrs, op, factory(u, nbrs), &transport_,
        [this](NodeId node, CombineToken token, Real value) {
          OnCombineDone(node, token, value);
        },
        config_.ghost_logging);
    if (registry_ != nullptr) {
      nodes_[static_cast<std::size_t>(u)]->set_metrics(&proto_metrics_);
    }
    // Attach before Run()'s loop: publishing on attach means every slot is
    // readable (epoch >= 1) before the first query can possibly arrive.
    nodes_[static_cast<std::size_t>(u)]->set_query_slot(
        snapshots_->slot(snap_index_[static_cast<std::size_t>(u)]));
  }
}

void NodeDaemon::ApplyRestore() {
  if (restore_ == nullptr) return;
  // A migration-era snapshot carries the placement map as this daemon
  // last knew it; the startup cluster config may be stale (nodes moved
  // before the crash). Adopt the restored map before importing node state
  // — the hosted set, reactor shards, and peer set all derive from it.
  // Safe to rebuild wholesale: Run() calls this before ConnectPeers() and
  // StartWorkers(), so no socket or worker exists yet. An empty restored
  // map is a pre-placement snapshot: the config map is authoritative.
  if (!restore_->node_daemon.empty() &&
      restore_->node_daemon.size() == config_.node_daemon.size() &&
      restore_->node_daemon != config_.node_daemon) {
    for (const int d : restore_->node_daemon) {
      if (d < 0 || d >= config_.NumDaemons()) {
        Fail("restored placement map names unknown daemon " +
             std::to_string(d));
        return;
      }
    }
    config_.node_daemon = restore_->node_daemon;
    BuildNodes();
    BuildReactors();
    RecomputePeers();
  }
  for (auto& [u, state] : restore_->nodes) {
    if (u >= 0 && u < tree_->size() && HostsNode(u)) {
      NodeRef(u).ImportState(state);
    }
  }
  sent_.store(restore_->sent, std::memory_order_relaxed);
  received_.store(restore_->received, std::memory_order_relaxed);
  SetCounts(restore_->counts);
  for (DurableState::SessionState& ss : restore_->sessions) {
    if (ss.peer < 0 || ss.peer >= static_cast<int>(sessions_.size())) continue;
    PeerSession& s = sessions_[static_cast<std::size_t>(ss.peer)];
    s.log = std::move(ss.log);
    s.log_base = ss.log_base;
    s.processed = ss.processed;
    // The restored snapshot IS the durable state: everything it covers may
    // be acked. (last_acked stays 0 — re-acking a cumulative count the
    // peer already GC'd is a no-op on its side.)
    s.durable_processed = ss.processed;
  }
  local_queue_.assign(restore_->local_queue.begin(),
                      restore_->local_queue.end());
  // Fold the restored lifetime counts into the per-kind send counters so
  // /metrics stays monotone across crash-restarts and keeps summing to the
  // same Figure 2 totals the harvest reports. (Per-kind receive and
  // grant/revoke splits are not in the durable state; those counters
  // restart from the respawn.)
  if (registry_ != nullptr) {
    proto_metrics_.sent[0]->Add(restore_->counts.probes);
    proto_metrics_.sent[1]->Add(restore_->counts.responses);
    proto_metrics_.sent[2]->Add(restore_->counts.updates);
    proto_metrics_.sent[3]->Add(restore_->counts.releases);
  }
  restore_.reset();
}

NodeDaemon::DurableState NodeDaemon::BuildDurable() const {
  DurableState state;
  for (NodeId u = 0; u < tree_->size(); ++u) {
    const auto& node = nodes_[static_cast<std::size_t>(u)];
    if (node == nullptr) continue;
    state.nodes.emplace_back(u, node->ExportState());
  }
  state.sent = sent_.load(std::memory_order_relaxed);
  state.received = received_.load(std::memory_order_relaxed);
  state.counts = CountsNow();
  for (const int p : peer_ids_) {
    const PeerSession& s = sessions_[static_cast<std::size_t>(p)];
    DurableState::SessionState ss;
    ss.peer = p;
    ss.log = s.log;
    ss.log_base = s.log_base;
    ss.processed = s.processed;
    state.sessions.push_back(std::move(ss));
  }
  state.local_queue.assign(local_queue_.begin(), local_queue_.end());
  state.node_daemon = config_.node_daemon;
  // Messages dispatched to a worker but not yet consumed survive in the
  // snapshot's local queue (restore re-dispatches them by reactor). The
  // caller guarantees quiescent rings: workers paused or joined, outboxes
  // drained. kInject* frames in a ring are deliberately NOT captured —
  // the driver re-injects incomplete requests after any restart
  // (ReinjectIncomplete), the same at-least-once edge as an inject lost
  // between processing and the WriteDone flush today.
  for (const auto& w : workers_) {
    w->inbox.SnapshotUnconsumed([&state](const WireFrame& f) {
      if (f.type == FrameType::kProtocol) state.local_queue.push_back(f.msg);
    });
  }
  return state;
}

MessageCounts NodeDaemon::CountsNow() const {
  MessageCounts c;
  c.probes = c_probes_.load(std::memory_order_relaxed);
  c.responses = c_responses_.load(std::memory_order_relaxed);
  c.updates = c_updates_.load(std::memory_order_relaxed);
  c.releases = c_releases_.load(std::memory_order_relaxed);
  return c;
}

void NodeDaemon::SetCounts(const MessageCounts& c) {
  c_probes_.store(c.probes, std::memory_order_relaxed);
  c_responses_.store(c.responses, std::memory_order_relaxed);
  c_updates_.store(c.updates, std::memory_order_relaxed);
  c_releases_.store(c.releases, std::memory_order_relaxed);
}

NodeDaemon::DurableState NodeDaemon::ExportDurable() const {
  return BuildDurable();
}

void NodeDaemon::MarkDirty() {
  dirty_ = true;
  ++frames_since_snapshot_;
}

void NodeDaemon::PersistIfDue(bool force) {
  if (!DurableToDisk() || !dirty_) return;
  if (!force &&
      frames_since_snapshot_ < options_.durability.snapshot_interval_frames) {
    return;
  }
  // Stop-the-world while the snapshot is captured: workers park between
  // messages, then the outboxes are drained so every worker-side effect
  // lands in the state the snapshot covers.
  PauseWorkers();
  DrainOutboxes();
  std::string err;
  const bool ok = SaveSnapshot(options_.durability.state_dir, BuildDurable(),
                               daemon_id_, &err);
  ResumeWorkers();
  if (!ok) {
    Fail("durability: " + err);
    return;
  }
  dirty_ = false;
  frames_since_snapshot_ = 0;
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  if (c_snapshots_ != nullptr) c_snapshots_->Inc();
  // Everything processed so far is now covered by the snapshot, so it is
  // safe to ack: the peer may GC it permanently.
  for (const int p : peer_ids_) {
    PeerSession& s = sessions_[static_cast<std::size_t>(p)];
    s.durable_processed = s.processed;
  }
}

void NodeDaemon::GcSessionLog(int peer, std::uint64_t ack) {
  PeerSession& s = sessions_[static_cast<std::size_t>(peer)];
  if (ack <= s.log_base) return;  // stale or duplicate ack
  if (ack > s.log_base + s.log.size()) {
    Fail("peer " + std::to_string(peer) +
         " acked frames we never logged (ack " + std::to_string(ack) +
         ", log end " + std::to_string(s.log_base + s.log.size()) + ")");
    return;
  }
  s.log.erase(s.log.begin(),
              s.log.begin() + static_cast<std::ptrdiff_t>(ack - s.log_base));
  s.log_base = ack;
  dirty_ = true;  // the persisted log shrank
}

void NodeDaemon::MaybeSendAcks() {
  const std::uint64_t interval = options_.durability.ack_interval;
  if (interval == 0) return;
  for (const int p : peer_ids_) {
    PeerSession& s = sessions_[static_cast<std::size_t>(p)];
    if (s.state != PeerSession::State::kLive) continue;
    if (s.wire_version < 3) continue;  // v2 peers cannot decode kPeerAck
    if (s.durable_processed < s.last_acked + interval) continue;
    // Acks are control traffic: not logged, not counted, not replayed.
    // Losing one is harmless (the next ack or hello is cumulative).
    WireFrame f;
    f.type = FrameType::kPeerAck;
    f.ack = s.durable_processed;
    f.ack_valid = true;
    TransmitToPeer(p, f);
    s.last_acked = s.durable_processed;
    FrameConn* conn = peers_[static_cast<std::size_t>(p)].get();
    if (conn == nullptr || !conn->open()) MarkPeerDown(p);
  }
}

void NodeDaemon::RestoreDurable(DurableState state) {
  restore_ = std::make_unique<DurableState>(std::move(state));
}

void NodeDaemon::SendPeerHello(int peer) {
  PeerSession& s = sessions_[static_cast<std::size_t>(peer)];
  FrameConn* conn = peers_[static_cast<std::size_t>(peer)].get();
  // Each hello we initiate is one (re)establishment of this peer link.
  if (registry_ != nullptr) transport_metrics_.reconnects->Inc();
  WireFrame hello;
  hello.type = FrameType::kPeerHello;
  hello.daemon_id = static_cast<std::uint32_t>(daemon_id_);
  hello.resume = s.processed;
  // Piggybacked cumulative ack: only the durably-covered count (the peer
  // GCs on it permanently, so an in-memory-only count would be unsound).
  hello.ack = s.durable_processed;
  hello.ack_valid = true;
  conn->SendFrame(hello);
  conn->Flush();
  s.state = PeerSession::State::kAwaitResume;
}

void NodeDaemon::ConnectPeers() {
  // The smaller daemon id initiates; the larger side accepts. Backoff in
  // ConnectWithBackoff absorbs any start-order race between processes. A
  // restarted daemon takes the same path: its hello carries the restored
  // processed count, so the accepting side resumes the session.
  for (const int peer : peer_ids_) {
    if (!Initiates(peer)) continue;
    const ClusterConfig::DaemonAddr& addr =
        config_.daemons[static_cast<std::size_t>(peer)];
    std::string err;
    ScopedFd fd =
        ConnectWithBackoff(addr.host, addr.port, options_.transport, &err);
    if (!fd.valid()) {
      Fail("peer " + std::to_string(peer) + ": " + err);
      return;
    }
    peers_[static_cast<std::size_t>(peer)] = NewFrameConn(std::move(fd));
    SendPeerHello(peer);
  }
}

void NodeDaemon::MarkPeerDown(int peer) {
  peers_[static_cast<std::size_t>(peer)].reset();
  // Held frames die with the connection: they are still in the replay log
  // (sent_upto is reset by the next GoLive), so the resume handshake
  // retransmits exactly the ones the peer never processed.
  held_[static_cast<std::size_t>(peer)].clear();
  PeerSession& s = sessions_[static_cast<std::size_t>(peer)];
  if (s.state == PeerSession::State::kDown) return;
  s.state = PeerSession::State::kDown;
  if (Initiates(peer)) {
    s.backoff_ms = options_.transport.backoff_initial_ms;
    s.next_attempt_ms = NowMs();
    s.give_up_ms = NowMs() + options_.transport.connect_timeout_ms;
  }
}

void NodeDaemon::TransmitToPeer(int peer, const WireFrame& frame) {
  std::deque<HeldFrame>& held = held_[static_cast<std::size_t>(peer)];
  const bool paused =
      pause_send_[static_cast<std::size_t>(peer)].load(std::memory_order_relaxed);
  PeerFaultInjector* injector = options_.fault_injector.get();
  const std::int64_t delay_us =
      (injector != nullptr && injector->HasDelayProfiles())
          ? injector->DelayUsFor(peer)
          : 0;
  if (paused || delay_us > 0 || !held.empty()) {
    // FIFO per directed edge: while anything is held, everything later
    // queues behind it; deadlines are clamped monotone for the same reason.
    std::int64_t due = NowUs() + delay_us;
    if (!held.empty()) due = std::max(due, held.back().due_us);
    held.push_back(HeldFrame{due, frame});
    frames_held_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TransmitNow(peer, frame);
}

void NodeDaemon::ReleaseHeldFrames() {
  const std::int64_t now = NowUs();
  for (std::size_t peer = 0; peer < held_.size(); ++peer) {
    std::deque<HeldFrame>& held = held_[peer];
    if (held.empty() || pause_send_[peer].load(std::memory_order_relaxed)) {
      continue;
    }
    while (!held.empty() && held.front().due_us <= now) {
      const WireFrame frame = std::move(held.front().frame);
      held.pop_front();
      TransmitNow(static_cast<int>(peer), frame);
    }
  }
}

std::int64_t NodeDaemon::EarliestHeldDueUs() const {
  std::int64_t earliest = -1;
  for (std::size_t peer = 0; peer < held_.size(); ++peer) {
    // Paused directions wait for RequestPauseSend(false), which wakes the
    // loop through the stop pipe — no timeout needed for them.
    if (held_[peer].empty() ||
        pause_send_[peer].load(std::memory_order_relaxed)) {
      continue;
    }
    const std::int64_t due = held_[peer].front().due_us;
    if (earliest < 0 || due < earliest) earliest = due;
  }
  return earliest;
}

void NodeDaemon::TransmitNow(int peer, const WireFrame& frame) {
  FrameConn* conn = peers_[static_cast<std::size_t>(peer)].get();
  if (conn == nullptr || !conn->open()) return;
  PeerFaultInjector* injector = options_.fault_injector.get();
  const PeerFaultInjector::Action action =
      injector ? injector->Decide() : PeerFaultInjector::Action::kNone;
  if (action == PeerFaultInjector::Action::kCorrupt) {
    // The damaged bytes take the frame's place on the wire; the receiver's
    // decoder rejects them and resets the link, and the clean copy in the
    // session log is retransmitted by the resume handshake.
    conn->SendRawBytes(injector->Corrupt(frame));
    return;
  }
  if (frame.type == FrameType::kProtocol) {
    // Protocol messages go through the per-edge coalescer (a no-op
    // pass-through to SendFrame unless batching is on and the session
    // speaks v4). The message is already in the replay log, so a batch
    // lost to a crash mid-flush is replayed message-granular on resume.
    conn->QueueMessage(frame.msg);
  } else {
    conn->SendFrame(frame);
  }
  if (action == PeerFaultInjector::Action::kSever) {
    ::shutdown(conn->fd(), SHUT_RDWR);
  }
}

void NodeDaemon::GoLive(int peer, std::uint64_t resume) {
  PeerSession& s = sessions_[static_cast<std::size_t>(peer)];
  if (resume < s.log_base) {
    // The peer lost durable memory of frames we already GC'd on its own
    // ack. Replaying is impossible; amnesia restarts are only supported
    // where no acked cross-daemon traffic exists.
    Fail("peer " + std::to_string(peer) + " resumed below our GC'd log base (" +
         std::to_string(resume) + " < " + std::to_string(s.log_base) +
         "): peer lost acked state");
    return;
  }
  if (resume > s.log_base + s.log.size()) {
    // The peer durably processed more than we remember sending — we are
    // the amnesiac side (restarted from an older snapshot than the frames
    // the peer saw, only possible with snapshot_interval_frames > 1, or
    // restarted with no snapshot at all). Adopt the peer's count: those
    // frames cannot be regenerated, and the mechanism state that produced
    // them is gone too, so the sessions agree to start from `resume`.
    s.log.clear();
    s.log_base = resume;
  }
  s.sent_upto = resume;
  while (s.sent_upto < s.log_base + s.log.size()) {
    TransmitToPeer(peer, s.log[static_cast<std::size_t>(s.sent_upto - s.log_base)]);
    ++s.sent_upto;
    FrameConn* conn = peers_[static_cast<std::size_t>(peer)].get();
    if (conn == nullptr || !conn->open()) {
      MarkPeerDown(peer);
      return;
    }
  }
  s.state = PeerSession::State::kLive;
}

void NodeDaemon::MaybeReconnectPeers() {
  for (const int peer : peer_ids_) {
    if (!Initiates(peer)) continue;  // the other side re-initiates
    PeerSession& s = sessions_[static_cast<std::size_t>(peer)];
    if (s.state != PeerSession::State::kDown) continue;
    const std::int64_t now = NowMs();
    if (s.give_up_ms > 0 && now >= s.give_up_ms) {
      Fail("peer " + std::to_string(peer) + ": reconnect timed out");
      return;
    }
    if (now < s.next_attempt_ms) continue;
    const ClusterConfig::DaemonAddr& addr =
        config_.daemons[static_cast<std::size_t>(peer)];
    TransportOptions attempt = options_.transport;
    attempt.connect_timeout_ms = 100;  // short: the poll loop must not stall
    std::string err;
    ScopedFd fd = ConnectWithBackoff(addr.host, addr.port, attempt, &err);
    if (fd.valid()) {
      peers_[static_cast<std::size_t>(peer)] = NewFrameConn(std::move(fd));
      SendPeerHello(peer);
    } else {
      s.backoff_ms = std::min(
          std::max(s.backoff_ms * 2, options_.transport.backoff_initial_ms),
          options_.transport.backoff_max_ms);
      s.next_attempt_ms = NowMs() + s.backoff_ms;
    }
  }
}

// --- reactor layer --------------------------------------------------------

void NodeDaemon::BuildReactors() {
  workers_.clear();  // idempotent (restored-map adoption re-runs this)
  node_reactor_.assign(static_cast<std::size_t>(tree_->size()), -1);
  std::vector<NodeId> hosted;
  for (const NodeId u : DfsPreorder(config_.tree_parent)) {
    if (HostsNode(u)) hosted.push_back(u);
  }
  int reactors = std::max(1, options_.reactors);
  reactors = hosted.empty()
                 ? 1
                 : std::min<int>(reactors, static_cast<int>(hosted.size()));
  // Contiguous DFS-preorder blocks — the same cut "subtree" placement
  // uses, so a subtree kept daemon-local stays reactor-local and the hot
  // parent/child edges avoid the cross-reactor hop.
  const std::size_t base = hosted.size() / static_cast<std::size_t>(reactors);
  const std::size_t extra = hosted.size() % static_cast<std::size_t>(reactors);
  std::size_t next = 0;
  for (int r = 0; r < reactors; ++r) {
    const std::size_t take =
        base + (static_cast<std::size_t>(r) < extra ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i) {
      node_reactor_[static_cast<std::size_t>(hosted[next++])] = r;
    }
  }
  for (int r = 1; r < reactors; ++r) {
    auto w = std::make_unique<Reactor>();
    const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (efd < 0) throw std::runtime_error("NodeDaemon: eventfd() failed");
    w->wake.reset(efd);
    workers_.push_back(std::move(w));
  }
}

void NodeDaemon::StartWorkers() {
  if (workers_.empty()) return;
  workers_stop_.store(false, std::memory_order_release);
  pause_requested_.store(false, std::memory_order_release);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread =
        std::thread([this, r = static_cast<int>(i) + 1] { WorkerLoop(r); });
  }
  workers_running_ = true;
}

void NodeDaemon::StopReactors() {
  if (!workers_running_) return;
  workers_stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker between its predicate check and
    // its wait cannot miss the notify below.
    std::lock_guard<std::mutex> lk(pause_mu_);
  }
  resume_cv_.notify_all();
  for (const auto& w : workers_) WakeWorker(*w);
  for (const auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  workers_running_ = false;
  pause_requested_.store(false, std::memory_order_release);
}

void NodeDaemon::WakeWorker(Reactor& r) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(r.wake.get(), &one, sizeof(one));
}

void NodeDaemon::WakePrimary() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void NodeDaemon::PauseWorkers() {
  ++pause_depth_;
  if (pause_depth_ > 1 || !workers_running_) return;
  pause_requested_.store(true, std::memory_order_release);
  for (const auto& w : workers_) WakeWorker(*w);
  std::unique_lock<std::mutex> lk(pause_mu_);
  pause_cv_.wait(lk, [this] {
    return paused_workers_ == static_cast<int>(workers_.size());
  });
}

void NodeDaemon::ResumeWorkers() {
  --pause_depth_;
  if (pause_depth_ > 0 || !workers_running_) return;
  pause_requested_.store(false, std::memory_order_release);
  resume_cv_.notify_all();
}

void NodeDaemon::WorkerLoop(int reactor) {
  tls_reactor = reactor;
  Reactor& r = *workers_[static_cast<std::size_t>(reactor - 1)];
  for (;;) {
    if (workers_stop_.load(std::memory_order_acquire)) return;
    if (pause_requested_.load(std::memory_order_acquire)) {
      // Park between messages: the local FIFO is empty here (every frame
      // is handled to completion), so the primary's snapshot observes no
      // half-processed work. The mutex hand-off publishes this worker's
      // node-state writes to the primary.
      std::unique_lock<std::mutex> lk(pause_mu_);
      ++paused_workers_;
      pause_cv_.notify_all();
      resume_cv_.wait(lk, [this] {
        return !pause_requested_.load(std::memory_order_acquire) ||
               workers_stop_.load(std::memory_order_acquire);
      });
      --paused_workers_;
      continue;
    }
    WireFrame f;
    if (r.inbox.Pop(&f)) {
      HandleWorkerFrame(r, std::move(f));
      continue;
    }
    if (r.inbox.SizeApprox() > 0) {
      // The primary is mid-Push (the size bumps before the node links
      // in); the frame is visible momentarily.
      std::this_thread::yield();
      continue;
    }
    // Idle: sleep on the eventfd. The short cap bounds the lost-wakeup
    // race (a Push that saw a transiently non-empty ring sends no wake).
    pollfd pfd{r.wake.get(), POLLIN, 0};
    ::poll(&pfd, 1, 5);
    std::uint64_t drained;
    while (::read(r.wake.get(), &drained, sizeof(drained)) > 0) {
    }
  }
}

void NodeDaemon::HandleWorkerFrame(Reactor& r, WireFrame frame) {
  // The primary validated node ownership before dispatching.
  switch (frame.type) {
    case FrameType::kProtocol:
      received_.fetch_add(1, std::memory_order_relaxed);
      NodeRef(frame.msg.to).Deliver(frame.msg);
      DrainReactorLocal(r);
      break;
    case FrameType::kInjectWrite: {
      NodeRef(frame.node).LocalWrite(frame.arg, frame.req);
      WireFrame done;
      done.type = FrameType::kWriteDone;
      done.req = frame.req;
      PushToPrimary(std::move(done));
      DrainReactorLocal(r);
      break;
    }
    case FrameType::kInjectCombine:
      NodeRef(frame.node).LocalCombine(static_cast<CombineToken>(frame.req));
      DrainReactorLocal(r);
      break;
    default:
      break;  // the primary dispatches no other frame type
  }
}

void NodeDaemon::DrainReactorLocal(Reactor& r) {
  while (!r.local.empty()) {
    const Message m = std::move(r.local.front());
    r.local.pop_front();
    received_.fetch_add(1, std::memory_order_relaxed);
    NodeRef(m.to).Deliver(m);
  }
}

void NodeDaemon::DispatchToReactor(int reactor, WireFrame f) {
  Reactor& w = *workers_[static_cast<std::size_t>(reactor - 1)];
  if (w.inbox.Push(std::move(f))) WakeWorker(w);
}

void NodeDaemon::PushToPrimary(WireFrame f) {
  Reactor& self = *workers_[static_cast<std::size_t>(tls_reactor - 1)];
  if (self.outbox.Push(std::move(f))) WakePrimary();
}

void NodeDaemon::DrainOutboxes() {
  for (const auto& w : workers_) {
    for (;;) {
      WireFrame f;
      if (!w->outbox.Pop(&f)) {
        if (w->outbox.SizeApprox() == 0) break;
        std::this_thread::yield();  // worker mid-Push; links momentarily
        continue;
      }
      // Worker-side effects reach the outside world only through here, so
      // marking dirty per drained frame keeps the write-ahead rule: the
      // snapshot preceding the next socket flush covers them.
      MarkDirty();
      switch (f.type) {
        case FrameType::kProtocol:
          ForwardProtocol(std::move(f));
          break;
        case FrameType::kWriteDone:
        case FrameType::kCombineDone:
          SendToDriver(f);
          break;
        default:
          break;
      }
      if (shutdown_) return;
    }
  }
}

void NodeDaemon::RouteSend(Message m) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  switch (m.type) {
    case MsgType::kProbe:
      c_probes_.fetch_add(1, std::memory_order_relaxed);
      break;
    case MsgType::kResponse:
      c_responses_.fetch_add(1, std::memory_order_relaxed);
      break;
    case MsgType::kUpdate:
      c_updates_.fetch_add(1, std::memory_order_relaxed);
      break;
    case MsgType::kRelease:
      c_releases_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  // Per-edge traffic tally for the placement optimizer: every protocol
  // message rides one tree edge, identified by its child endpoint
  // (parent[u] < u, so the child is the larger id of the pair).
  edge_traffic_[static_cast<std::size_t>(std::max(m.from, m.to))].fetch_add(
      1, std::memory_order_relaxed);
  const int owner = config_.node_daemon[static_cast<std::size_t>(m.to)];
  if (tls_reactor > 0) {
    // Worker reactor. Same-shard messages stay in the worker's own FIFO;
    // everything else (other shard, other daemon) hops through the
    // primary, which owns the sockets and the session logs. The single
    // hop keeps every ring SPSC and every directed edge on one path.
    if (owner == daemon_id_ &&
        node_reactor_[static_cast<std::size_t>(m.to)] == tls_reactor) {
      workers_[static_cast<std::size_t>(tls_reactor - 1)]->local.push_back(
          std::move(m));
      return;
    }
    WireFrame f;
    f.type = FrameType::kProtocol;
    f.msg = std::move(m);
    PushToPrimary(std::move(f));
    return;
  }
  if (owner == daemon_id_ &&
      node_reactor_[static_cast<std::size_t>(m.to)] <= 0) {
    local_queue_.push_back(std::move(m));
    return;
  }
  WireFrame f;
  f.type = FrameType::kProtocol;
  f.msg = std::move(m);
  ForwardProtocol(std::move(f));
}

void NodeDaemon::ForwardProtocol(WireFrame f) {
  const NodeId to = f.msg.to;
  const int owner = config_.node_daemon[static_cast<std::size_t>(to)];
  if (owner == daemon_id_) {
    const int vr = node_reactor_[static_cast<std::size_t>(to)];
    if (vr <= 0) {
      // A worker-originated message for a primary-shard node: deliver
      // now, to completion (same discipline as an inbound frame).
      received_.fetch_add(1, std::memory_order_relaxed);
      NodeRef(to).Deliver(f.msg);
      DrainLocal();
    } else {
      DispatchToReactor(vr, std::move(f));
    }
    return;
  }
  // Every cross-daemon frame is appended to the session log first — the
  // durable copy replayed on resume. A link that is not Live just parks
  // the frame; a send onto a dead connection downgrades the link and the
  // resume handshake retransmits.
  if (registry_ != nullptr) {
    EnsurePeerCounters(owner);
    peer_msgs_[static_cast<std::size_t>(owner)]->Inc();
    peer_bytes_[static_cast<std::size_t>(owner)]->Add(EncodeFrame(f).size());
  }
  PeerSession& s = sessions_[static_cast<std::size_t>(owner)];
  s.log.push_back(std::move(f));
  if (s.log.size() > replay_log_hwm_.load(std::memory_order_relaxed)) {
    replay_log_hwm_.store(s.log.size(), std::memory_order_relaxed);
  }
  if (s.state == PeerSession::State::kLive) {
    TransmitToPeer(owner, s.log.back());
    s.sent_upto = s.log_base + s.log.size();
    FrameConn* conn = peers_[static_cast<std::size_t>(owner)].get();
    if (conn == nullptr || !conn->open()) MarkPeerDown(owner);
  }
}

void NodeDaemon::DrainLocal() {
  while (!local_queue_.empty()) {
    Message m = std::move(local_queue_.front());
    local_queue_.pop_front();
    const int vr = node_reactor_[static_cast<std::size_t>(m.to)];
    if (vr > 0) {
      // Possible only for messages restored from a snapshot taken with a
      // different reactor count (the snapshot's local queue is
      // shard-agnostic): re-dispatch to the owning worker.
      WireFrame f;
      f.type = FrameType::kProtocol;
      f.msg = std::move(m);
      DispatchToReactor(vr, std::move(f));
      continue;
    }
    received_.fetch_add(1, std::memory_order_relaxed);
    NodeRef(m.to).Deliver(m);
  }
}

void NodeDaemon::SendToDriver(const WireFrame& frame) {
  if (driver_ != nullptr && driver_->open()) {
    driver_->SendFrame(frame);
  } else {
    // No driver connection (restart in progress): park the frame; it is
    // flushed when the driver's kDriverHello classifies a new connection.
    driver_outbox_.push_back(frame);
  }
}

// --- placement / migration layer -----------------------------------------

void NodeDaemon::HandleTrafficReq(const WireFrame& frame) {
  // Statistical read of the relaxed per-edge counters — the driver
  // harvests at quiescence, so no pause is needed; only nonzero edges are
  // shipped (the sparse encoding keeps the frame small on large trees).
  WireFrame resp;
  resp.type = FrameType::kTrafficResp;
  resp.req = frame.req;
  for (NodeId u = 1; u < tree_->size(); ++u) {
    const std::uint64_t c = edge_traffic_[static_cast<std::size_t>(u)].load(
        std::memory_order_relaxed);
    if (c > 0) resp.traffic.emplace_back(u, c);
  }
  SendToDriver(resp);
}

void NodeDaemon::HandleMigrateOut(const WireFrame& frame) {
  if (frame.node < 0 || frame.node >= tree_->size()) {
    Fail("migrate-out for node outside the tree");
    return;
  }
  WireFrame resp;
  resp.type = FrameType::kMigrateState;
  resp.req = frame.req;
  resp.node = frame.node;
  if (!HostsNode(frame.node)) {
    // A retry after this daemon already committed the node away: nothing
    // to export. resume = 0 tells the driver to skip the install.
    resp.resume = 0;
    SendToDriver(resp);
    return;
  }
  // Stop the world so the export is the settled post-quiescence state,
  // whichever reactor owns the node. The source KEEPS hosting until the
  // commit — re-running this export in the message-free window yields the
  // identical blob, which is what makes the driver's retry safe.
  PauseWorkers();
  DrainOutboxes();
  resp.resume = 1;
  resp.blob = EncodeNodeStateBlob(NodeRef(frame.node).ExportState());
  resp.epoch = snapshots_
                   ->slot(snap_index_[static_cast<std::size_t>(frame.node)])
                   ->Read()
                   .epoch;
  ResumeWorkers();
  SendToDriver(resp);
}

void NodeDaemon::HandleMigrateIn(const WireFrame& frame) {
  if (frame.node < 0 || frame.node >= tree_->size()) {
    Fail("migrate-in for node outside the tree");
    return;
  }
  WireFrame done;
  done.type = FrameType::kMigrateDone;
  done.req = frame.req;
  const NodeId u = frame.node;
  if (HostsNode(u)) {
    // A retry after a crash between install and commit: already hosted.
    SendToDriver(done);
    return;
  }
  LeaseNode::DurableState st;
  if (!DecodeNodeStateBlob(frame.blob.data(), frame.blob.size(), &st)) {
    Fail("migrate-in: undecodable state blob for node " + std::to_string(u));
    return;
  }
  PauseWorkers();
  DrainOutboxes();
  config_.node_daemon[static_cast<std::size_t>(u)] = daemon_id_;
  const PolicyFactory factory = PolicyBySpec(config_.policy);
  const std::vector<NodeId> nbrs = tree_->neighbors(u).ToVector();
  nodes_[static_cast<std::size_t>(u)] = std::make_unique<LeaseNode>(
      u, nbrs, OpByName(config_.op), factory(u, nbrs), &transport_,
      [this](NodeId node, CombineToken token, Real value) {
        OnCombineDone(node, token, value);
      },
      config_.ghost_logging);
  if (registry_ != nullptr) {
    nodes_[static_cast<std::size_t>(u)]->set_metrics(&proto_metrics_);
  }
  // Adopted nodes run on the primary reactor: re-sharding mid-run would
  // tear down worker threads for no benefit. A later restart re-shards
  // naturally from the adopted map.
  node_reactor_[static_cast<std::size_t>(u)] = 0;
  // The table swap attaches the new node's slot (seeded with the source's
  // epoch, so the attach-publish continues its sequence); the import then
  // publishes the real migrated value.
  RebuildSnapshotTable(u, frame.epoch);
  NodeRef(u).ImportState(st);
  ReconcilePeerSessions();
  MarkDirty();
  PersistIfDue(/*force=*/true);
  ResumeWorkers();
  SendToDriver(done);
}

void NodeDaemon::HandleMigrateCommit(const WireFrame& frame) {
  const int target = static_cast<int>(frame.daemon_id);
  if (frame.node < 0 || frame.node >= tree_->size() || target < 0 ||
      target >= config_.NumDaemons()) {
    Fail("migrate-commit with node or owner outside the cluster");
    return;
  }
  WireFrame done;
  done.type = FrameType::kMigrateDone;
  done.req = frame.req;
  const NodeId u = frame.node;
  if (target == daemon_id_ || !HostsNode(u)) {
    // A no-op move, or a retry after the commit already applied. Either
    // way reconcile the map entry and reply idempotently.
    if (target != daemon_id_ &&
        config_.node_daemon[static_cast<std::size_t>(u)] != target) {
      PauseWorkers();
      config_.node_daemon[static_cast<std::size_t>(u)] = target;
      ReconcilePeerSessions();
      MarkDirty();
      PersistIfDue(/*force=*/true);
      ResumeWorkers();
    }
    SendToDriver(done);
    return;
  }
  PauseWorkers();
  DrainOutboxes();
  nodes_[static_cast<std::size_t>(u)].reset();
  node_reactor_[static_cast<std::size_t>(u)] = -1;
  config_.node_daemon[static_cast<std::size_t>(u)] = target;
  RebuildSnapshotTable(kInvalidNode, 0);
  ReconcilePeerSessions();
  MarkDirty();
  PersistIfDue(/*force=*/true);
  ResumeWorkers();
  SendToDriver(done);
}

void NodeDaemon::HandlePlacementUpdate(const WireFrame& frame) {
  WireFrame done;
  done.type = FrameType::kMigrateDone;
  done.req = frame.req;
  PauseWorkers();
  DrainOutboxes();
  bool changed = false;
  for (const auto& [node, d] : frame.moves) {
    if (node < 0 || node >= tree_->size() || d < 0 ||
        d >= config_.NumDaemons()) {
      ResumeWorkers();
      Fail("placement update names a node or daemon outside the cluster");
      return;
    }
    int& slot = config_.node_daemon[static_cast<std::size_t>(node)];
    if (slot == d) continue;
    if (slot == daemon_id_ || d == daemon_id_) {
      // Our own hosted set only changes through the install/commit
      // handshake above; the broadcast must agree with what we already
      // applied.
      ResumeWorkers();
      Fail("placement update moves node " + std::to_string(node) +
           " onto or off daemon " + std::to_string(daemon_id_) +
           " without a migration");
      return;
    }
    slot = d;
    changed = true;
  }
  if (changed) {
    ReconcilePeerSessions();
    MarkDirty();
    PersistIfDue(/*force=*/true);
  }
  ResumeWorkers();
  SendToDriver(done);
}

void NodeDaemon::RebuildSnapshotTable(NodeId seeded_node,
                                      std::uint64_t seeded_epoch) {
  // Caller holds the worker pause: no reactor publishes or reads a slot
  // while the table is swapped. The old table stays alive until every
  // surviving node is re-attached to its new slot.
  const std::vector<std::int32_t> old_index = std::move(snap_index_);
  const std::unique_ptr<query::SnapshotTable> old = std::move(snapshots_);
  snap_index_.assign(static_cast<std::size_t>(tree_->size()), -1);
  std::int32_t hosted = 0;
  for (NodeId u = 0; u < tree_->size(); ++u) {
    if (HostsNode(u)) snap_index_[static_cast<std::size_t>(u)] = hosted++;
  }
  snapshots_ = std::make_unique<query::SnapshotTable>(
      static_cast<std::size_t>(hosted));
  for (NodeId u = 0; u < tree_->size(); ++u) {
    const std::int32_t idx = snap_index_[static_cast<std::size_t>(u)];
    if (idx < 0) continue;
    // Epoch continuity: published epochs must stay monotone per node, so
    // the fresh slot picks up where the old one (or, for the migrated-in
    // node, the source daemon's slot) left off.
    std::uint64_t epoch = 0;
    if (u == seeded_node) {
      epoch = seeded_epoch;
    } else if (old != nullptr && old_index[static_cast<std::size_t>(u)] >= 0) {
      epoch = old->slot(old_index[static_cast<std::size_t>(u)])->Read().epoch;
    }
    snapshots_->slot(idx)->Seed(epoch);
    if (nodes_[static_cast<std::size_t>(u)] != nullptr) {
      nodes_[static_cast<std::size_t>(u)]->set_query_slot(
          snapshots_->slot(idx));
    }
  }
}

void NodeDaemon::ReconcilePeerSessions() {
  RecomputePeers();
  for (const int p : peer_ids_) {
    PeerSession& s = sessions_[static_cast<std::size_t>(p)];
    if (s.state == PeerSession::State::kDown &&
        peers_[static_cast<std::size_t>(p)] == nullptr && Initiates(p)) {
      // A link the new placement created: bootstrap the initiator-side
      // reconnect schedule (the acceptor side needs nothing — its
      // classification accepts any daemon's hello).
      s.backoff_ms = options_.transport.backoff_initial_ms;
      s.next_attempt_ms = NowMs();
      s.give_up_ms = NowMs() + options_.transport.connect_timeout_ms;
    }
  }
  // Re-latch the bring-up gate: no protocol frame is handled until every
  // session of the new peer set is Live. Links to daemons no longer in
  // peer_ids_ are left untouched — harmless, and the sessions stay valid
  // if a later re-placement brings the pair back.
  peers_ready_ = PeersReady();
}

void NodeDaemon::OnCombineDone(NodeId node, CombineToken token, Real value) {
  const LeaseNode& n = NodeRef(node);
  WireFrame f;
  f.type = FrameType::kCombineDone;
  f.req = static_cast<ReqId>(token);
  f.value = value;
  f.gather.assign(n.LastWrites().begin(), n.LastWrites().end());
  f.log_prefix = static_cast<std::int64_t>(n.GhostLogEntries().size());
  if (tls_reactor > 0) {
    PushToPrimary(std::move(f));  // driver connection lives on the primary
    return;
  }
  SendToDriver(f);
}

void NodeDaemon::HandleFrame(WireFrame frame, int from_peer) {
  if (h_frame_ms_ == nullptr) {
    HandleFrameInner(std::move(frame), from_peer);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  HandleFrameInner(std::move(frame), from_peer);
  const auto dt = std::chrono::steady_clock::now() - t0;
  h_frame_ms_->Observe(
      std::chrono::duration<double, std::milli>(dt).count());
}

void NodeDaemon::HandleProtocolMessage(Message m, int from_peer) {
  if (m.to < 0 || m.to >= tree_->size() || !HostsNode(m.to)) {
    Fail("protocol message for node this daemon does not host");
    return;
  }
  if (from_peer >= 0) {
    PeerSession& s = sessions_[static_cast<std::size_t>(from_peer)];
    ++s.processed;
    // Memory-durable mode: fail-stop export captures everything, so
    // the in-memory count is already the durable one.
    if (!DurableToDisk()) s.durable_processed = s.processed;
  }
  const int vr = node_reactor_[static_cast<std::size_t>(m.to)];
  if (vr > 0) {
    WireFrame f;
    f.type = FrameType::kProtocol;
    f.msg = std::move(m);
    DispatchToReactor(vr, std::move(f));
  } else {
    received_.fetch_add(1, std::memory_order_relaxed);
    NodeRef(m.to).Deliver(m);
    DrainLocal();
  }
  MarkDirty();
}

void NodeDaemon::HandleFrameInner(WireFrame frame, int from_peer) {
  switch (frame.type) {
    case FrameType::kProtocol:
      HandleProtocolMessage(std::move(frame.msg), from_peer);
      break;
    case FrameType::kBatch:
      // One coalesced frame, N independent messages: session accounting
      // and delivery are per element, so the sender's per-message replay
      // log indices line up with our processed count exactly.
      if (from_peer < 0) {
        Fail("batch frame on the driver connection");
        return;
      }
      for (Message& m : frame.batch) {
        HandleProtocolMessage(std::move(m), from_peer);
        if (shutdown_) return;
      }
      break;
    case FrameType::kInjectWrite: {
      if (frame.node < 0 || frame.node >= tree_->size() ||
          !HostsNode(frame.node)) {
        Fail("write injected at node this daemon does not host");
        return;
      }
      const int vr = node_reactor_[static_cast<std::size_t>(frame.node)];
      if (vr > 0) {
        // The owning worker applies the write and sends kWriteDone back
        // through its outbox.
        DispatchToReactor(vr, std::move(frame));
        MarkDirty();
        break;
      }
      NodeRef(frame.node).LocalWrite(frame.arg, frame.req);
      WireFrame done;
      done.type = FrameType::kWriteDone;
      done.req = frame.req;
      SendToDriver(done);
      DrainLocal();
      MarkDirty();
      break;
    }
    case FrameType::kInjectCombine: {
      if (frame.node < 0 || frame.node >= tree_->size() ||
          !HostsNode(frame.node)) {
        Fail("combine injected at node this daemon does not host");
        return;
      }
      const int vr = node_reactor_[static_cast<std::size_t>(frame.node)];
      if (vr > 0) {
        DispatchToReactor(vr, std::move(frame));
        MarkDirty();
        break;
      }
      // Completion (possibly much later) flows through OnCombineDone.
      NodeRef(frame.node).LocalCombine(static_cast<CombineToken>(frame.req));
      DrainLocal();
      MarkDirty();
      break;
    }
    case FrameType::kStatusReq: {
      // Consistent multi-counter read: park the workers between messages
      // and fold their outboxes in first. Anything still sitting in an
      // inbox ring counts as queued (it is counted in sent, not yet in
      // received, so sent == received && queued == 0 stays the "nothing
      // in flight" predicate).
      PauseWorkers();
      DrainOutboxes();
      std::uint64_t queued = local_queue_.size();
      for (const auto& w : workers_) queued += w->inbox.SizeApprox();
      // The driver's quiescence probe is the natural snapshot point: the
      // daemon is (locally) idle, so one save here covers a whole burst.
      if (options_.durability.snapshot_on_quiescence &&
          sent_.load(std::memory_order_relaxed) ==
              received_.load(std::memory_order_relaxed) &&
          queued == 0) {
        PersistIfDue(true);
      }
      WireFrame resp;
      resp.type = FrameType::kStatusResp;
      resp.status.probe = frame.status.probe;
      resp.status.sent = sent_.load(std::memory_order_relaxed);
      resp.status.received = received_.load(std::memory_order_relaxed);
      resp.status.queued = queued;
      ResumeWorkers();
      SendToDriver(resp);
      break;
    }
    case FrameType::kHarvestReq: {
      // Ghost logs live inside worker-owned LeaseNodes: stop the world
      // for the read.
      PauseWorkers();
      DrainOutboxes();
      WireFrame resp;
      resp.type = FrameType::kHarvestResp;
      for (NodeId u = 0; u < tree_->size(); ++u) {
        if (!HostsNode(u)) continue;
        NodeLogPayload nl;
        nl.node = u;
        nl.log = NodeRef(u).GhostLogEntries();
        resp.harvest.logs.push_back(std::move(nl));
      }
      resp.harvest.counts = CountsNow();
      ResumeWorkers();
      SendToDriver(resp);
      break;
    }
    case FrameType::kShutdown:
      shutdown_ = true;
      break;
    case FrameType::kPeerHello:
      // On an AwaitResume link this is the acceptor's handshake reply:
      // its processed count tells us where to replay from. Its ack (v3)
      // lets us GC first, so the replay starts from a trimmed log.
      if (from_peer >= 0 &&
          sessions_[static_cast<std::size_t>(from_peer)].state ==
              PeerSession::State::kAwaitResume) {
        PeerSession& s = sessions_[static_cast<std::size_t>(from_peer)];
        // Session dialect: the lower of the two endpoints' versions. A v2
        // hello (no ack) pins v2; a v3 peer gets v3 back (acks, no
        // kBatch); v4 both ways unlocks batching.
        s.wire_version =
            frame.ack_valid
                ? std::min<std::uint8_t>(kWireVersion, frame.wire_version)
                : std::uint8_t{2};
        peers_[static_cast<std::size_t>(from_peer)]->set_wire_version(
            s.wire_version);
        if (frame.ack_valid) GcSessionLog(from_peer, frame.ack);
        GoLive(from_peer, frame.resume);
        break;
      }
      Fail("unexpected hello frame on an established connection");
      break;
    case FrameType::kPeerAck:
      if (from_peer >= 0) {
        if (frame.ack_valid) GcSessionLog(from_peer, frame.ack);
      } else {
        Fail("peer-ack frame on the driver connection");
      }
      break;
    case FrameType::kDriverHello:
      Fail("unexpected hello frame on an established connection");
      break;
    case FrameType::kQuery: {
      // Snapshot read on the driver connection. Queries never ride peer
      // sessions (the v5 wire contract), and the answer comes straight
      // from the seqlock slot — no LeaseNode state is touched, no
      // protocol message is sent, no Figure-2 counter moves.
      if (from_peer >= 0) {
        Fail("query frame on a peer session");
        break;
      }
      WireFrame resp;
      if (!BuildQueryResp(frame, &resp)) {
        Fail("query for node " + std::to_string(frame.node) +
             ", which daemon " + std::to_string(daemon_id_) +
             " does not host");
        break;
      }
      SendToDriver(resp);
      break;
    }
    case FrameType::kTrafficReq:
    case FrameType::kMigrateOut:
    case FrameType::kMigrateIn:
    case FrameType::kMigrateCommit:
    case FrameType::kPlacementUpdate:
      // The placement conversation rides the driver connection only; a
      // per-session downgrade keeps v6 frames away from old peers, and a
      // peer has no business migrating our nodes anyway.
      if (from_peer >= 0) {
        Fail(std::string(ToString(frame.type)) + " frame on a peer session");
        return;
      }
      switch (frame.type) {
        case FrameType::kTrafficReq:
          HandleTrafficReq(frame);
          break;
        case FrameType::kMigrateOut:
          HandleMigrateOut(frame);
          break;
        case FrameType::kMigrateIn:
          HandleMigrateIn(frame);
          break;
        case FrameType::kMigrateCommit:
          HandleMigrateCommit(frame);
          break;
        default:
          HandlePlacementUpdate(frame);
          break;
      }
      break;
    case FrameType::kWriteDone:
    case FrameType::kCombineDone:
    case FrameType::kStatusResp:
    case FrameType::kHarvestResp:
    case FrameType::kQueryResp:
    case FrameType::kTrafficResp:
    case FrameType::kMigrateState:
    case FrameType::kMigrateDone:
      Fail(std::string("daemon received driver-bound frame ") +
           ToString(frame.type));
      break;
  }
}

bool NodeDaemon::PeersReady() const {
  for (const int p : peer_ids_) {
    if (sessions_[static_cast<std::size_t>(p)].state !=
        PeerSession::State::kLive) {
      return false;
    }
  }
  return true;
}

void NodeDaemon::DrainParkedFrames() {
  const auto drain = [&](FrameConn* conn, int from_peer) {
    if (conn == nullptr || !conn->open()) return;
    WireFrame frame;
    for (;;) {
      const DecodeStatus status = conn->NextFrame(&frame);
      if (status == DecodeStatus::kNeedMore) break;
      if (status != DecodeStatus::kOk) {
        if (from_peer >= 0) {
          MarkPeerDown(from_peer);
        } else {
          Fail(conn->error());
        }
        break;
      }
      HandleFrame(std::move(frame), from_peer);
      frame = WireFrame{};
      if (shutdown_) break;
    }
  };
  drain(driver_.get(), -1);
  for (const int p : peer_ids_) {
    if (shutdown_) break;
    drain(peers_[static_cast<std::size_t>(p)].get(), p);
  }
}

void NodeDaemon::HandleDriverEof() {
  // The driver vanishing (test teardown, crashed client, or the chaos
  // harness's kill) is an implicit shutdown, not an error.
  shutdown_ = true;
}

// Reads everything available on `conn` and dispatches complete frames.
// Returns false when the connection is closed or failed; a damaged frame
// stream from a peer is a link failure (the caller resets the session),
// from the driver a fatal error.
bool NodeDaemon::DrainConn(FrameConn* conn, int from_peer) {
  const bool read_ok = conn->ReadAvailable();
  WireFrame frame;
  for (;;) {
    const DecodeStatus status = conn->NextFrame(&frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kOk) {
      if (from_peer < 0) Fail(conn->error());
      return false;
    }
    HandleFrame(std::move(frame), from_peer);
    frame = WireFrame{};
    if (shutdown_) return true;
  }
  if (!read_ok && from_peer < 0 && !conn->eof() && !conn->error().empty()) {
    Fail(conn->error());
  }
  return read_ok;
}

void NodeDaemon::HandleAwaitResume(int peer) {
  FrameConn* conn = peers_[static_cast<std::size_t>(peer)].get();
  const bool alive = conn->ReadAvailable();
  WireFrame frame;
  const DecodeStatus status = conn->NextFrame(&frame);
  if (status == DecodeStatus::kOk) {
    if (frame.type == FrameType::kPeerHello) {
      // GoLive via the normal path. Frames buffered behind the hello stay
      // parked in the FrameReader until the bring-up gate opens.
      HandleFrame(std::move(frame), peer);
    } else {
      MarkPeerDown(peer);  // protocol frame before the resume reply
      return;
    }
  } else if (status != DecodeStatus::kNeedMore) {
    MarkPeerDown(peer);
    return;
  }
  if (!alive &&
      sessions_[static_cast<std::size_t>(peer)].state !=
          PeerSession::State::kLive) {
    MarkPeerDown(peer);
  }
}

std::string NodeDaemon::RenderMetricsPage() {
  // Point-in-time gauges are refreshed at scrape time; we are on the
  // daemon thread, so reading the queues and sessions is race-free.
  std::uint64_t log_frames = 0;
  for (const int p : peer_ids_) {
    log_frames += sessions_[static_cast<std::size_t>(p)].log.size();
  }
  g_replay_log_->Set(static_cast<std::int64_t>(log_frames));
  g_replay_log_hwm_->Set(
      static_cast<std::int64_t>(replay_log_hwm_.load(std::memory_order_relaxed)));
  g_local_queue_->Set(static_cast<std::int64_t>(local_queue_.size()));
  return registry_->RenderPrometheus();
}

bool NodeDaemon::ServiceMetricsConn(MetricsConn& mc, short revents) {
  if (revents & (POLLERR | POLLNVAL)) return false;
  if (!mc.closing && (revents & (POLLIN | POLLHUP))) {
    char buf[4096];
    bool eof = false;
    for (;;) {
      const ssize_t n = ::recv(mc.fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        mc.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        // Half-close: the scraper shut down its write side after the
        // request. The buffered head still gets parsed and answered below;
        // the connection drops only once the responses have flushed.
        eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    // Answer every complete request buffered so far: a slow link delivers
    // a head in arbitrary pieces (keep waiting on kNeedMore), and a
    // pipelining scraper batches several GETs into one segment (each one
    // gets its own response, in order). Every response still announces
    // Connection: close, and the connection closes once everything
    // buffered is answered — later requests belong on a new connection.
    while (!mc.closing) {
      obs::HttpRequest req;
      std::size_t consumed = 0;
      const obs::HttpParse parsed =
          obs::ParseHttpRequest(mc.in, &req, &consumed);
      if (parsed == obs::HttpParse::kNeedMore) break;
      if (parsed == obs::HttpParse::kBad) {
        mc.out += obs::BuildHttpResponse(400, "text/plain", "bad request\n");
        mc.closing = true;
        break;
      }
      mc.in.erase(0, consumed);
      if (req.method != "GET") {
        mc.out += obs::BuildHttpResponse(405, "text/plain",
                                         "method not allowed\n");
      } else if (req.target == "/metrics" ||
                 req.target.rfind("/metrics?", 0) == 0) {
        mc.out += obs::BuildHttpResponse(200, obs::kPrometheusContentType,
                                         RenderMetricsPage());
      } else {
        mc.out += obs::BuildHttpResponse(404, "text/plain", "not found\n");
      }
      if (mc.in.empty()) mc.closing = true;
    }
    if (eof) mc.closing = true;
  }
  while (mc.out_pos < mc.out.size()) {
    const ssize_t n = ::send(mc.fd.get(), mc.out.data() + mc.out_pos,
                             mc.out.size() - mc.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      mc.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return !(mc.closing && mc.out_pos == mc.out.size());
}

bool NodeDaemon::BuildQueryResp(const WireFrame& q, WireFrame* resp) {
  if (q.node < 0 || q.node >= tree_->size() ||
      snap_index_[static_cast<std::size_t>(q.node)] < 0) {
    return false;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const query::SnapshotSlot* slot =
      snapshots_->slot(snap_index_[static_cast<std::size_t>(q.node)]);
  query::QueryAnswer answer;
  while (!slot->TryRead(&answer)) {
    // A worker reactor is mid-publish on this slot; a publish is a handful
    // of relaxed stores, so the retry window is nanoseconds wide.
    if (registry_ != nullptr) query_metrics_.read_retries->Inc();
  }
  resp->type = FrameType::kQueryResp;
  resp->req = q.req;
  resp->node = q.node;
  resp->epoch = answer.epoch;
  resp->value = answer.value;
  resp->log_prefix = answer.log_prefix;
  if (registry_ != nullptr) {
    query_metrics_.queries_served->Inc();
    query_metrics_.serve_latency_ms->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  return true;
}

bool NodeDaemon::ServeQuery(const WireFrame& q, FrameConn* conn) {
  WireFrame resp;
  if (!BuildQueryResp(q, &resp)) return false;
  conn->SendFrame(resp);
  return true;
}

bool NodeDaemon::ServiceQueryConn(QueryClient& qc, short revents) {
  FrameConn* conn = qc.conn.get();
  if (conn == nullptr || !conn->open()) return false;
  if (revents & (POLLERR | POLLNVAL)) return false;
  if (!qc.closing && (revents & (POLLIN | POLLHUP))) {
    const bool alive = conn->ReadAvailable();
    WireFrame frame;
    for (;;) {
      const DecodeStatus status = conn->NextFrame(&frame);
      if (status == DecodeStatus::kNeedMore) break;
      if (status != DecodeStatus::kOk) return false;
      // The read tier speaks exactly one frame type; anything else is a
      // protocol violation and drops the connection.
      if (frame.type != FrameType::kQuery) return false;
      if (!ServeQuery(frame, conn)) return false;
      frame = WireFrame{};
    }
    // Half-close: answers for the queries above are queued; flush them
    // before dropping the connection.
    if (!alive) qc.closing = true;
  }
  conn->Flush();
  if (!conn->open()) return false;
  return !(qc.closing && !conn->WantWrite());
}

void NodeDaemon::FlushAll() {
  // Write-ahead rule: nothing leaves a socket before a snapshot covers the
  // state that generated it — otherwise a restart would forget effects a
  // peer or the driver already observed.
  PersistIfDue(/*force=*/false);
  MaybeSendAcks();
  if (driver_) driver_->Flush();
  for (auto& p : peers_) {
    if (p) p->Flush();
  }
}

void NodeDaemon::Run() {
  try {
    BuildNodes();
    BuildReactors();
    // Disk recovery: a staged in-memory restore (in-process clusters)
    // takes precedence; otherwise a snapshot in the state dir is the
    // authoritative pre-crash state. No snapshot means a fresh start.
    if (restore_ == nullptr && DurableToDisk()) {
      DaemonDurableState st;
      std::string err;
      switch (LoadSnapshot(options_.durability.state_dir, &st, daemon_id_,
                           &err)) {
        case SnapshotLoad::kOk:
          restore_ = std::make_unique<DurableState>(std::move(st));
          break;
        case SnapshotLoad::kError:
          Fail("durability: " + err);
          break;
        case SnapshotLoad::kNotFound:
          break;
      }
    }
    ApplyRestore();
    if (!shutdown_) ConnectPeers();
    if (!shutdown_) StartWorkers();
  } catch (const std::exception& e) {
    Fail(e.what());
  }
  std::vector<pollfd> pfds;
  // Parallel to pfds: the FrameConn each pollfd belongs to (nullptr for
  // the stop pipe and the listener) and which peer owns it (-1 driver,
  // -2 pending/none).
  std::vector<FrameConn*> conns;
  std::vector<int> conn_peer;
  while (!shutdown_ && !stop_requested_.load()) {
    // Deferred link sever requested by the chaos harness: performed here,
    // on the daemon thread, so no other thread touches the fd.
    const int sever = sever_peer_.exchange(-1);
    if (sever >= 0 && sever < static_cast<int>(peers_.size())) {
      FrameConn* conn = peers_[static_cast<std::size_t>(sever)].get();
      if (conn != nullptr && conn->open()) {
        ::shutdown(conn->fd(), SHUT_RDWR);
      }
    }
    MaybeReconnectPeers();
    // Held frames (pause-send windows, gray/WAN delay profiles) whose
    // deadline passed go on the wire now, in FIFO order.
    ReleaseHeldFrames();
    // Bring-up gate: handle no non-hello frame until every peer session is
    // Live. When the last session comes up, first replay the frames that
    // were read into FrameReaders behind hello frames.
    if (!peers_ready_ && PeersReady()) {
      peers_ready_ = true;
      DrainParkedFrames();
      FlushAll();
      if (shutdown_) break;
    }
    pfds.clear();
    conns.clear();
    conn_peer.clear();
    pfds.push_back({stop_pipe_[0], POLLIN, 0});
    conns.push_back(nullptr);
    conn_peer.push_back(-2);
    if (listener_.valid()) {
      pfds.push_back({listener_.fd(), POLLIN, 0});
      conns.push_back(nullptr);
      conn_peer.push_back(-2);
    }
    // /metrics listener + its HTTP connections ride the same poll set.
    // Their pfds carry null conns, so the frame-connection loop below
    // skips them; they are serviced positionally before it runs.
    if (metrics_listener_.valid()) {
      pfds.push_back({metrics_listener_.fd(), POLLIN, 0});
      conns.push_back(nullptr);
      conn_peer.push_back(-2);
    }
    const std::size_t metrics_conn_count = metrics_conns_.size();
    for (MetricsConn& mc : metrics_conns_) {
      short events = POLLIN;
      if (mc.out_pos < mc.out.size()) events |= POLLOUT;
      pfds.push_back({mc.fd.get(), events, 0});
      conns.push_back(nullptr);
      conn_peer.push_back(-2);
    }
    // Query-tier clients ride the poll set the same way: null conns, so
    // the frame-connection loop skips them; serviced positionally below.
    const std::size_t query_conn_count = query_conns_.size();
    for (QueryClient& qc : query_conns_) {
      short events = POLLIN;
      if (qc.conn->WantWrite()) events |= POLLOUT;
      pfds.push_back({qc.conn->fd(), events, 0});
      conns.push_back(nullptr);
      conn_peer.push_back(-2);
    }
    const auto add_conn = [&](FrameConn* c, int peer) {
      if (c == nullptr || !c->open()) return;
      short events = POLLIN;
      if (c->WantWrite()) events |= POLLOUT;
      pfds.push_back({c->fd(), events, 0});
      conns.push_back(c);
      conn_peer.push_back(peer);
    };
    add_conn(driver_.get(), -1);
    for (const int p : peer_ids_) {
      add_conn(peers_[static_cast<std::size_t>(p)].get(), p);
    }
    for (PendingConn& p : pending_) add_conn(p.conn.get(), -2);

    // Clamp the poll timeout to the earliest pending batch deadline so a
    // lone coalesced batch cannot stall until an unrelated wake-up.
    int timeout_ms = 500;
    if (options_.transport.batch_bytes > 0 &&
        options_.transport.batch_flush_us > 0) {
      const std::int64_t now_us = NowUs();
      for (const int p : peer_ids_) {
        FrameConn* c = peers_[static_cast<std::size_t>(p)].get();
        if (c == nullptr) continue;
        const std::int64_t ddl = c->BatchDeadlineUs();
        if (ddl < 0) continue;
        const std::int64_t wait_ms =
            std::max<std::int64_t>((ddl - now_us + 999) / 1000, 0);
        timeout_ms = std::min<int>(timeout_ms, static_cast<int>(wait_ms));
      }
    }
    // Same clamp for delay-held frames: wake when the earliest is due.
    const std::int64_t held_due = EarliestHeldDueUs();
    if (held_due >= 0) {
      const std::int64_t wait_ms =
          std::max<std::int64_t>((held_due - NowUs() + 999) / 1000, 0);
      timeout_ms = std::min<int>(timeout_ms, static_cast<int>(wait_ms));
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      Fail("poll failed");
      break;
    }
    if (ready <= 0) {
      // Timeout turn: fold in any worker output and flush due batches
      // (FlushAll encodes a batch whose deadline has passed).
      DrainOutboxes();
      FlushAll();
      continue;
    }

    std::size_t i = 0;
    // Stop pipe.
    if (pfds[i].revents & POLLIN) {
      char buf[64];
      while (::read(stop_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    ++i;
    // Listener: accept every pending connection; its role is unknown
    // until its hello frame arrives.
    if (listener_.valid()) {
      if (pfds[i].revents & POLLIN) {
        for (;;) {
          ScopedFd fd = listener_.Accept();
          if (!fd.valid()) break;
          pending_.push_back(PendingConn{NewFrameConn(std::move(fd))});
        }
      }
      ++i;
    }
    // Metrics listener + HTTP connections (serviced before the frame
    // connections; indices line up with the pfds built above).
    if (metrics_listener_.valid()) {
      if (pfds[i].revents & POLLIN) {
        for (;;) {
          ScopedFd fd = metrics_listener_.Accept();
          if (!fd.valid()) break;
          MetricsConn mc;
          mc.fd = std::move(fd);
          metrics_conns_.push_back(std::move(mc));
        }
      }
      ++i;
    }
    if (metrics_conn_count > 0) {
      std::vector<bool> keep(metrics_conn_count, true);
      for (std::size_t m = 0; m < metrics_conn_count; ++m, ++i) {
        if (pfds[i].revents == 0) continue;
        keep[m] = ServiceMetricsConn(metrics_conns_[m], pfds[i].revents);
      }
      std::size_t m = 0;
      std::erase_if(metrics_conns_, [&](const MetricsConn&) {
        const std::size_t idx = m++;
        return idx < metrics_conn_count && !keep[idx];
      });
    }
    if (query_conn_count > 0) {
      std::vector<bool> keep(query_conn_count, true);
      for (std::size_t q = 0; q < query_conn_count; ++q, ++i) {
        if (pfds[i].revents == 0) continue;
        keep[q] = ServiceQueryConn(query_conns_[q], pfds[i].revents);
      }
      std::size_t q = 0;
      std::erase_if(query_conns_, [&](const QueryClient&) {
        const std::size_t idx = q++;
        return idx < query_conn_count && !keep[idx];
      });
    }
    // Established connections (driver + peers) then pending ones; pfds
    // beyond i map 1:1 onto conns/conn_peer. Pending entries come last, so
    // a classification that replaces a dead driver/peer connection only
    // destroys an object whose index was already processed.
    for (; i < pfds.size(); ++i) {
      FrameConn* conn = conns[i];
      if (conn == nullptr) continue;
      int from_peer = conn_peer[i];
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const bool is_pending =
            std::any_of(pending_.begin(), pending_.end(),
                        [&](const PendingConn& p) { return p.conn.get() == conn; });
        if (is_pending) {
          // Classify on the hello frame, then process any frames that
          // arrived in the same read batch.
          const bool alive = conn->ReadAvailable();
          WireFrame hello;
          const DecodeStatus status = conn->NextFrame(&hello);
          if (status == DecodeStatus::kNeedMore) {
            if (!alive) ErasePending(conn);
            continue;
          }
          if (status != DecodeStatus::kOk) {
            ErasePending(conn);
            continue;
          }
          std::unique_ptr<FrameConn> owned = TakePending(conn);
          if (hello.type == FrameType::kDriverHello) {
            driver_ = std::move(owned);
            conn = driver_.get();
            from_peer = -1;
            // A reconnecting driver (daemon restart) picks up the frames
            // produced while no driver was attached.
            while (!driver_outbox_.empty()) {
              driver_->SendFrame(driver_outbox_.front());
              driver_outbox_.pop_front();
            }
          } else if (hello.type == FrameType::kPeerHello &&
                     hello.daemon_id < peers_.size()) {
            const int p = static_cast<int>(hello.daemon_id);
            peers_[hello.daemon_id] = std::move(owned);
            conn = peers_[hello.daemon_id].get();
            from_peer = p;
            PeerSession& sess = sessions_[static_cast<std::size_t>(p)];
            // Session dialect = min(ours, theirs). A v2 hello carries no
            // ack: encode v2 back and never ack it; a v3 hello gets v3
            // (acks, no kBatch); v4 both ways unlocks batching.
            sess.wire_version =
                hello.ack_valid
                    ? std::min<std::uint8_t>(kWireVersion, hello.wire_version)
                    : std::uint8_t{2};
            conn->set_wire_version(sess.wire_version);
            if (hello.ack_valid) GcSessionLog(p, hello.ack);
            // Acceptor handshake: reply with our processed count (and our
            // cumulative ack, dropped automatically on a v2 encode), then
            // resume the session from the initiator's.
            WireFrame reply;
            reply.type = FrameType::kPeerHello;
            reply.daemon_id = static_cast<std::uint32_t>(daemon_id_);
            reply.resume = sess.processed;
            reply.ack = sess.durable_processed;
            reply.ack_valid = true;
            conn->SendFrame(reply);
            conn->Flush();
            GoLive(p, hello.resume);
            if (peers_[static_cast<std::size_t>(p)] == nullptr) continue;
          } else if (hello.type == FrameType::kQuery) {
            // A connection that opens with a query (instead of a hello) is
            // a read-tier client. Snapshot reads are independent of the
            // mechanism, so they are served immediately — even before the
            // peer bring-up gate opens — and never park.
            QueryClient qc;
            qc.conn = std::move(owned);
            bool ok = ServeQuery(hello, qc.conn.get());
            WireFrame qf;
            while (ok) {
              const DecodeStatus qs = qc.conn->NextFrame(&qf);
              if (qs == DecodeStatus::kNeedMore) break;
              if (qs != DecodeStatus::kOk || qf.type != FrameType::kQuery) {
                ok = false;
                break;
              }
              ok = ServeQuery(qf, qc.conn.get());
              qf = WireFrame{};
            }
            if (ok) {
              qc.conn->Flush();
              if (!alive) qc.closing = true;
              if (qc.conn->open() && (!qc.closing || qc.conn->WantWrite())) {
                query_conns_.push_back(std::move(qc));
              }
            }
            continue;  // not a mechanism connection: skip the drain below
          } else {
            continue;  // bogus hello: drop the connection
          }
          // Frames already buffered behind the hello. Before the bring-up
          // gate opens they stay parked in the FrameReader; the gate
          // replays them via DrainParkedFrames().
          if (peers_ready_) {
            WireFrame frame;
            for (;;) {
              const DecodeStatus s = conn->NextFrame(&frame);
              if (s == DecodeStatus::kNeedMore) break;
              if (s != DecodeStatus::kOk) {
                if (from_peer >= 0) {
                  MarkPeerDown(from_peer);
                } else {
                  Fail(conn->error());
                }
                break;
              }
              HandleFrame(std::move(frame), from_peer);
              frame = WireFrame{};
              if (shutdown_) break;
            }
            if (from_peer >= 0 &&
                peers_[static_cast<std::size_t>(from_peer)] == nullptr) {
              continue;  // link was torn down while draining
            }
          }
          if (!alive && conn == driver_.get()) HandleDriverEof();
        } else if (!peers_ready_) {
          if (from_peer >= 0 &&
              sessions_[static_cast<std::size_t>(from_peer)].state ==
                  PeerSession::State::kAwaitResume) {
            // The resume reply must be processed before the gate can open.
            HandleAwaitResume(from_peer);
            if (peers_[static_cast<std::size_t>(from_peer)] == nullptr) {
              continue;
            }
          }
          // Otherwise: leave the bytes in the kernel buffer; poll is
          // level-triggered, so POLLIN fires again once the gate opens.
        } else if (!DrainConn(conn, from_peer)) {
          if (conn == driver_.get()) {
            HandleDriverEof();
          } else if (from_peer >= 0) {
            // A dropped peer link is recoverable: mark the session down
            // and let the resume handshake pick it back up.
            MarkPeerDown(from_peer);
            continue;
          } else {
            conn->Close();
          }
        }
        if (shutdown_) break;
      }
      if (conn->open() && (pfds[i].revents & POLLOUT)) {
        PersistIfDue(/*force=*/false);  // write-ahead rule (see FlushAll)
        conn->Flush();
      }
    }
    // Fold in whatever the workers produced while this batch of frames
    // was handled, then flush opportunistically.
    DrainOutboxes();
    FlushAll();
  }
  // Stop the worker reactors first: after the joins the primary is the
  // sole thread, so the final snapshot and flushes see settled state
  // (frames still in inbox rings land in the snapshot's local queue).
  StopReactors();
  DrainOutboxes();
  // Final snapshot on a clean shutdown: a later restart from the state dir
  // resumes from exactly where this run ended.
  PersistIfDue(/*force=*/true);
  // Force out any still-coalescing batches (their flush timer may not
  // have fired); the snapshot above already covers them — write-ahead.
  for (auto& p : peers_) {
    if (p && p->open()) p->FlushBatchNow();
  }
  // Graceful exit: push out whatever is still buffered (completion and
  // harvest frames racing the shutdown), bounded by the io timeout.
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  for (;;) {
    FlushAll();
    bool want = false;
    if (driver_ && driver_->open() && driver_->WantWrite()) want = true;
    for (auto& p : peers_) {
      if (p && p->open() && p->WantWrite()) want = true;
    }
    if (!want || NowMs() >= deadline) break;
    pollfd pfd{driver_ && driver_->WantWrite() ? driver_->fd() : -1, POLLOUT,
               0};
    ::poll(&pfd, 1, 50);
  }
}

}  // namespace treeagg
