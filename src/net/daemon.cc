#include "net/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "core/aggregate_op.h"
#include "core/extra_policies.h"
#include "tree/topology.h"

namespace treeagg {

void NodeDaemon::NetTransport::Send(Message m) {
  daemon_->RouteSend(std::move(m));
}

NodeDaemon::NodeDaemon(int daemon_id, ClusterConfig config, Options options)
    : daemon_id_(daemon_id),
      config_(std::move(config)),
      options_(options),
      transport_(this) {
  config_.Validate();
  if (daemon_id_ < 0 || daemon_id_ >= config_.NumDaemons()) {
    throw std::invalid_argument("NodeDaemon: daemon id " +
                                std::to_string(daemon_id_) +
                                " not in the cluster config");
  }
  tree_ = std::make_unique<Tree>(config_.tree_parent);
  peers_.resize(config_.daemons.size());
  // Peer daemons this one shares a tree edge with.
  for (const Edge& e : tree_->edges()) {
    const int du = config_.node_daemon[static_cast<std::size_t>(e.u)];
    const int dv = config_.node_daemon[static_cast<std::size_t>(e.v)];
    if (du == dv) continue;
    if (du == daemon_id_) peer_ids_.push_back(dv);
    if (dv == daemon_id_) peer_ids_.push_back(du);
  }
  std::sort(peer_ids_.begin(), peer_ids_.end());
  peer_ids_.erase(std::unique(peer_ids_.begin(), peer_ids_.end()),
                  peer_ids_.end());
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error("NodeDaemon: pipe() failed");
  }
  for (const int fd : stop_pipe_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

std::unique_ptr<FrameConn> NodeDaemon::TakePending(FrameConn* conn) {
  for (PendingConn& p : pending_) {
    if (p.conn.get() == conn) {
      std::unique_ptr<FrameConn> owned = std::move(p.conn);
      pending_.erase(pending_.begin() + (&p - pending_.data()));
      return owned;
    }
  }
  return nullptr;
}

void NodeDaemon::ErasePending(FrameConn* conn) { TakePending(conn); }

NodeDaemon::~NodeDaemon() {
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void NodeDaemon::Bind() {
  const ClusterConfig::DaemonAddr& addr =
      config_.daemons[static_cast<std::size_t>(daemon_id_)];
  listener_ = TcpListener::Bind(addr.host, addr.port);
}

std::uint16_t NodeDaemon::BoundPort() const { return listener_.port(); }

void NodeDaemon::SetResolvedPorts(const std::vector<std::uint16_t>& ports) {
  if (ports.size() != config_.daemons.size()) {
    throw std::invalid_argument("SetResolvedPorts: wrong port count");
  }
  for (std::size_t d = 0; d < ports.size(); ++d) {
    config_.daemons[d].port = ports[d];
  }
}

void NodeDaemon::RequestStop() {
  stop_requested_.store(true);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void NodeDaemon::Fail(std::string why) {
  if (error_.empty()) error_ = std::move(why);
  shutdown_ = true;
}

void NodeDaemon::BuildNodes() {
  const PolicyFactory factory = PolicyBySpec(config_.policy);
  const AggregateOp& op = OpByName(config_.op);
  nodes_.resize(static_cast<std::size_t>(tree_->size()));
  for (NodeId u = 0; u < tree_->size(); ++u) {
    if (!HostsNode(u)) continue;
    const std::vector<NodeId> nbrs = tree_->neighbors(u).ToVector();
    nodes_[static_cast<std::size_t>(u)] = std::make_unique<LeaseNode>(
        u, nbrs, op, factory(u, nbrs), &transport_,
        [this](NodeId node, CombineToken token, Real value) {
          OnCombineDone(node, token, value);
        },
        config_.ghost_logging);
  }
}

void NodeDaemon::ConnectPeers() {
  // The smaller daemon id initiates; the larger side accepts. Backoff in
  // ConnectWithBackoff absorbs any start-order race between processes.
  for (const int peer : peer_ids_) {
    if (peer < daemon_id_) continue;
    const ClusterConfig::DaemonAddr& addr =
        config_.daemons[static_cast<std::size_t>(peer)];
    std::string err;
    ScopedFd fd =
        ConnectWithBackoff(addr.host, addr.port, options_.transport, &err);
    if (!fd.valid()) {
      Fail("peer " + std::to_string(peer) + ": " + err);
      return;
    }
    auto conn = std::make_unique<FrameConn>(std::move(fd), options_.transport);
    WireFrame hello;
    hello.type = FrameType::kPeerHello;
    hello.daemon_id = static_cast<std::uint32_t>(daemon_id_);
    conn->SendFrame(hello);
    conn->Flush();
    peers_[static_cast<std::size_t>(peer)] = std::move(conn);
  }
}

void NodeDaemon::RouteSend(Message m) {
  ++sent_;
  switch (m.type) {
    case MsgType::kProbe: ++counts_.probes; break;
    case MsgType::kResponse: ++counts_.responses; break;
    case MsgType::kUpdate: ++counts_.updates; break;
    case MsgType::kRelease: ++counts_.releases; break;
  }
  const int owner = config_.node_daemon[static_cast<std::size_t>(m.to)];
  if (owner == daemon_id_) {
    local_queue_.push_back(std::move(m));
    return;
  }
  FrameConn* conn = peers_[static_cast<std::size_t>(owner)].get();
  if (conn == nullptr || !conn->open()) {
    Fail("send to daemon " + std::to_string(owner) +
         " with no open connection");
    return;
  }
  WireFrame f;
  f.type = FrameType::kProtocol;
  f.msg = std::move(m);
  conn->SendFrame(f);
}

void NodeDaemon::DrainLocal() {
  while (!local_queue_.empty()) {
    const Message m = std::move(local_queue_.front());
    local_queue_.pop_front();
    ++received_;
    NodeRef(m.to).Deliver(m);
  }
}

void NodeDaemon::OnCombineDone(NodeId node, CombineToken token, Real value) {
  if (driver_ == nullptr) return;  // combine not driver-initiated: ignore
  const LeaseNode& n = NodeRef(node);
  WireFrame f;
  f.type = FrameType::kCombineDone;
  f.req = static_cast<ReqId>(token);
  f.value = value;
  f.gather.assign(n.LastWrites().begin(), n.LastWrites().end());
  f.log_prefix = static_cast<std::int64_t>(n.GhostLogEntries().size());
  driver_->SendFrame(f);
}

void NodeDaemon::HandleFrame(WireFrame frame) {
  switch (frame.type) {
    case FrameType::kProtocol:
      if (frame.msg.to < 0 || frame.msg.to >= tree_->size() ||
          !HostsNode(frame.msg.to)) {
        Fail("protocol message for node this daemon does not host");
        return;
      }
      ++received_;
      NodeRef(frame.msg.to).Deliver(frame.msg);
      DrainLocal();
      break;
    case FrameType::kInjectWrite: {
      if (frame.node < 0 || frame.node >= tree_->size() ||
          !HostsNode(frame.node)) {
        Fail("write injected at node this daemon does not host");
        return;
      }
      NodeRef(frame.node).LocalWrite(frame.arg, frame.req);
      WireFrame done;
      done.type = FrameType::kWriteDone;
      done.req = frame.req;
      if (driver_) driver_->SendFrame(done);
      DrainLocal();
      break;
    }
    case FrameType::kInjectCombine:
      if (frame.node < 0 || frame.node >= tree_->size() ||
          !HostsNode(frame.node)) {
        Fail("combine injected at node this daemon does not host");
        return;
      }
      // Completion (possibly much later) flows through OnCombineDone.
      NodeRef(frame.node).LocalCombine(static_cast<CombineToken>(frame.req));
      DrainLocal();
      break;
    case FrameType::kStatusReq: {
      WireFrame resp;
      resp.type = FrameType::kStatusResp;
      resp.status.probe = frame.status.probe;
      resp.status.sent = sent_;
      resp.status.received = received_;
      resp.status.queued = local_queue_.size();
      if (driver_) driver_->SendFrame(resp);
      break;
    }
    case FrameType::kHarvestReq: {
      WireFrame resp;
      resp.type = FrameType::kHarvestResp;
      for (NodeId u = 0; u < tree_->size(); ++u) {
        if (!HostsNode(u)) continue;
        NodeLogPayload nl;
        nl.node = u;
        nl.log = NodeRef(u).GhostLogEntries();
        resp.harvest.logs.push_back(std::move(nl));
      }
      resp.harvest.counts = counts_;
      if (driver_) driver_->SendFrame(resp);
      break;
    }
    case FrameType::kShutdown:
      shutdown_ = true;
      break;
    case FrameType::kPeerHello:
    case FrameType::kDriverHello:
      // Hellos are consumed during connection classification; a repeat is
      // a protocol error.
      Fail("unexpected hello frame on an established connection");
      break;
    case FrameType::kWriteDone:
    case FrameType::kCombineDone:
    case FrameType::kStatusResp:
    case FrameType::kHarvestResp:
      Fail(std::string("daemon received driver-bound frame ") +
           ToString(frame.type));
      break;
  }
}

bool NodeDaemon::PeersReady() const {
  for (const int p : peer_ids_) {
    const auto& conn = peers_[static_cast<std::size_t>(p)];
    if (conn == nullptr || !conn->open()) return false;
  }
  return true;
}

void NodeDaemon::DrainParkedFrames() {
  const auto drain = [&](FrameConn* conn) {
    if (conn == nullptr || !conn->open()) return;
    WireFrame frame;
    for (;;) {
      const DecodeStatus status = conn->NextFrame(&frame);
      if (status == DecodeStatus::kNeedMore) break;
      if (status != DecodeStatus::kOk) {
        Fail(conn->error());
        break;
      }
      HandleFrame(std::move(frame));
      frame = WireFrame{};
      if (shutdown_) break;
    }
  };
  drain(driver_.get());
  for (auto& p : peers_) {
    if (shutdown_) break;
    drain(p.get());
  }
}

void NodeDaemon::HandleDriverEof() {
  // The driver vanishing (test teardown, crashed client) is an implicit
  // shutdown, not an error.
  shutdown_ = true;
}

// Reads everything available on `conn` and dispatches complete frames.
// Returns false when the connection is closed or failed.
bool NodeDaemon::DrainConn(FrameConn* conn) {
  const bool read_ok = conn->ReadAvailable();
  WireFrame frame;
  for (;;) {
    const DecodeStatus status = conn->NextFrame(&frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kOk) {
      Fail(conn->error());
      return false;
    }
    HandleFrame(std::move(frame));
    frame = WireFrame{};
    if (shutdown_) return true;
  }
  if (!read_ok && !conn->eof() && !conn->error().empty()) {
    Fail(conn->error());
  }
  return read_ok;
}

void NodeDaemon::FlushAll() {
  if (driver_) driver_->Flush();
  for (auto& p : peers_) {
    if (p) p->Flush();
  }
}

void NodeDaemon::Run() {
  try {
    BuildNodes();
    ConnectPeers();
  } catch (const std::exception& e) {
    Fail(e.what());
  }
  std::vector<pollfd> pfds;
  // Parallel to pfds: the FrameConn each pollfd belongs to (nullptr for
  // the stop pipe and the listener).
  std::vector<FrameConn*> conns;
  while (!shutdown_ && !stop_requested_.load()) {
    // Bring-up gate: handle no frame until every peer link is open. When
    // the last link comes up, first replay the frames that were read into
    // FrameReaders behind hello frames during classification.
    if (!peers_ready_ && PeersReady()) {
      peers_ready_ = true;
      DrainParkedFrames();
      FlushAll();
      if (shutdown_) break;
    }
    pfds.clear();
    conns.clear();
    pfds.push_back({stop_pipe_[0], POLLIN, 0});
    conns.push_back(nullptr);
    if (listener_.valid()) {
      pfds.push_back({listener_.fd(), POLLIN, 0});
      conns.push_back(nullptr);
    }
    const auto add_conn = [&](FrameConn* c) {
      if (c == nullptr || !c->open()) return;
      short events = POLLIN;
      if (c->WantWrite()) events |= POLLOUT;
      pfds.push_back({c->fd(), events, 0});
      conns.push_back(c);
    };
    add_conn(driver_.get());
    for (auto& p : peers_) add_conn(p.get());
    for (PendingConn& p : pending_) add_conn(p.conn.get());

    const int ready = ::poll(pfds.data(), pfds.size(), 500);
    if (ready < 0 && errno != EINTR) {
      Fail("poll failed");
      break;
    }
    if (ready <= 0) continue;

    std::size_t i = 0;
    // Stop pipe.
    if (pfds[i].revents & POLLIN) {
      char buf[64];
      while (::read(stop_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    ++i;
    // Listener: accept every pending connection; its role is unknown
    // until its hello frame arrives.
    if (listener_.valid()) {
      if (pfds[i].revents & POLLIN) {
        for (;;) {
          ScopedFd fd = listener_.Accept();
          if (!fd.valid()) break;
          pending_.push_back(PendingConn{std::make_unique<FrameConn>(
              std::move(fd), options_.transport)});
        }
      }
      ++i;
    }
    // Established connections (driver + peers). Note pfds beyond i map
    // 1:1 onto the conns vector.
    for (; i < pfds.size(); ++i) {
      FrameConn* conn = conns[i];
      if (conn == nullptr) continue;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        const bool is_pending =
            std::any_of(pending_.begin(), pending_.end(),
                        [&](const PendingConn& p) { return p.conn.get() == conn; });
        if (is_pending) {
          // Classify on the hello frame, then process any frames that
          // arrived in the same read batch.
          const bool alive = conn->ReadAvailable();
          WireFrame hello;
          const DecodeStatus status = conn->NextFrame(&hello);
          if (status == DecodeStatus::kNeedMore) {
            if (!alive) ErasePending(conn);
            continue;
          }
          if (status != DecodeStatus::kOk) {
            ErasePending(conn);
            continue;
          }
          std::unique_ptr<FrameConn> owned = TakePending(conn);
          if (hello.type == FrameType::kDriverHello) {
            driver_ = std::move(owned);
            conn = driver_.get();
          } else if (hello.type == FrameType::kPeerHello &&
                     hello.daemon_id < peers_.size()) {
            peers_[hello.daemon_id] = std::move(owned);
            conn = peers_[hello.daemon_id].get();
          } else {
            continue;  // bogus hello: drop the connection
          }
          // Frames already buffered behind the hello. Before the bring-up
          // gate opens they stay parked in the FrameReader; the gate
          // replays them via DrainParkedFrames().
          if (peers_ready_) {
            WireFrame frame;
            for (;;) {
              const DecodeStatus s = conn->NextFrame(&frame);
              if (s == DecodeStatus::kNeedMore) break;
              if (s != DecodeStatus::kOk) {
                Fail(conn->error());
                break;
              }
              HandleFrame(std::move(frame));
              frame = WireFrame{};
              if (shutdown_) break;
            }
          }
          if (!alive && conn == driver_.get()) HandleDriverEof();
        } else if (!peers_ready_) {
          // Bring-up gate: leave the bytes in the kernel buffer; poll is
          // level-triggered, so POLLIN fires again once the gate opens.
        } else if (!DrainConn(conn)) {
          if (conn == driver_.get()) {
            HandleDriverEof();
          } else {
            // A peer closing is normal during staggered teardown; a
            // failed (vs EOF'd) peer is an error surfaced on next send.
            conn->Close();
          }
        }
        if (shutdown_) break;
      }
      if (conn->open() && (pfds[i].revents & POLLOUT)) conn->Flush();
    }
    // Opportunistic flush: frames generated while handling this batch.
    FlushAll();
  }
  // Graceful exit: push out whatever is still buffered (completion and
  // harvest frames racing the shutdown), bounded by the io timeout.
  const std::int64_t deadline = NowMs() + options_.transport.io_timeout_ms;
  for (;;) {
    FlushAll();
    bool want = false;
    if (driver_ && driver_->open() && driver_->WantWrite()) want = true;
    for (auto& p : peers_) {
      if (p && p->open() && p->WantWrite()) want = true;
    }
    if (!want || NowMs() >= deadline) break;
    pollfd pfd{driver_ && driver_->WantWrite() ? driver_->fd() : -1, POLLOUT,
               0};
    ::poll(&pfd, 1, 50);
  }
}

}  // namespace treeagg
