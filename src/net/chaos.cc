#include "net/chaos.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "net/faulty_transport.h"

namespace treeagg {
namespace {

struct Action {
  enum Kind { kRestart, kDisarm, kKill, kSever, kArm } kind;
  int a = 0;  // daemon id (kill/restart), first daemon (sever)
  int b = 0;  // second daemon (sever)
  std::size_t window = 0;  // index into open-window bookkeeping
};

std::int64_t ClampIndex(std::int64_t t, std::size_t n) {
  return std::clamp<std::int64_t>(t, 0, static_cast<std::int64_t>(n));
}

}  // namespace

ChaosNetResult RunChaosNetWorkload(const std::vector<NodeId>& tree_parent,
                                   const RequestSequence& sigma,
                                   const FaultSchedule& schedule,
                                   const ChaosNetOptions& options) {
  if (schedule.HasFifoViolations()) {
    throw std::invalid_argument(
        "net chaos: dup/reorder are checker-validation faults with no "
        "convergence-safe network interpretation");
  }
  if (!options.cluster.fault_injectors.empty()) {
    throw std::invalid_argument(
        "net chaos: leave ChaosNetOptions::cluster.fault_injectors empty "
        "(the harness owns them)");
  }

  LocalCluster::Options cluster_options = options.cluster;
  const bool wants_drop =
      std::any_of(schedule.events().begin(), schedule.events().end(),
                  [](const FaultEvent& e) { return e.kind == FaultKind::kDrop; });
  double max_drop_p = 0;
  for (const FaultEvent& e : schedule.events()) {
    if (e.kind == FaultKind::kDrop) max_drop_p = std::max(max_drop_p, e.p);
  }
  if (wants_drop) {
    for (int d = 0; d < cluster_options.daemons; ++d) {
      PeerFaultInjector::Options inj;
      inj.corrupt_probability = max_drop_p;
      inj.seed = schedule.seed() * 0x9E3779B97F4A7C15ull +
                 static_cast<std::uint64_t>(d) + 1;
      cluster_options.fault_injectors.push_back(
          std::make_shared<PeerFaultInjector>(inj));
    }
  }

  LocalCluster cluster(tree_parent, cluster_options);
  NetDriver& driver = cluster.driver();
  const ClusterConfig& config = cluster.config();
  ChaosNetResult result;

  // Plan: injection index -> actions, heal actions (restart/disarm) sorted
  // before fault actions so a window ending where another begins heals
  // first.
  std::map<std::int64_t, std::vector<Action>> plan;
  std::vector<std::int64_t> window_begin_clock;  // filled as windows open
  for (const FaultEvent& e : schedule.events()) {
    const std::int64_t b = ClampIndex(e.begin, sigma.size());
    const std::int64_t t_end = ClampIndex(e.end, sigma.size());
    const std::size_t w = window_begin_clock.size();
    switch (e.kind) {
      case FaultKind::kCrash: {
        const int d = config.node_daemon[static_cast<std::size_t>(e.u)];
        plan[b].push_back({Action::kKill, d, 0, w});
        plan[t_end].push_back({Action::kRestart, d, 0, w});
        window_begin_clock.push_back(-1);
        break;
      }
      case FaultKind::kCut: {
        const int d1 = config.node_daemon[static_cast<std::size_t>(e.u)];
        const int d2 = config.node_daemon[static_cast<std::size_t>(e.v)];
        if (d1 != d2) {
          plan[b].push_back({Action::kSever, d1, d2, w});
          window_begin_clock.push_back(-1);
        }
        break;
      }
      case FaultKind::kDrop: {
        plan[b].push_back({Action::kArm, 0, 0, w});
        plan[t_end].push_back({Action::kDisarm, 0, 0, w});
        window_begin_clock.push_back(-1);
        break;
      }
      case FaultKind::kDelay:
        break;  // real TCP has real delays; nothing to inject
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
        break;  // rejected above
    }
  }
  for (auto& [index, actions] : plan) {
    std::stable_sort(actions.begin(), actions.end(),
                     [](const Action& x, const Action& y) {
                       return x.kind < y.kind;  // heals before faults
                     });
  }

  std::vector<char> down(static_cast<std::size_t>(cluster_options.daemons), 0);
  std::vector<RequestSequence> deferred(
      static_cast<std::size_t>(cluster_options.daemons));
  const auto inject = [&](const Request& r) {
    return r.op == ReqType::kWrite ? driver.InjectWrite(r.node, r.arg)
                                   : driver.InjectCombine(r.node);
  };
  const auto apply = [&](const Action& action) {
    switch (action.kind) {
      case Action::kKill: {
        const std::size_t d = static_cast<std::size_t>(action.a);
        if (down[d]) break;  // overlapping crash windows: one kill
        window_begin_clock[action.window] = driver.clock();
        cluster.KillDaemon(action.a);
        down[d] = 1;
        ++result.kills;
        break;
      }
      case Action::kRestart: {
        const std::size_t d = static_cast<std::size_t>(action.a);
        if (!down[d]) break;
        result.reinjected += cluster.RestartDaemon(action.a);
        down[d] = 0;
        for (const Request& r : deferred[d]) {
          inject(r);
          ++result.deferred;
        }
        deferred[d].clear();
        break;
      }
      case Action::kSever:
        window_begin_clock[action.window] = driver.clock();
        cluster.SeverPeerLink(action.a, action.b);
        ++result.severs;
        break;
      case Action::kArm:
        window_begin_clock[action.window] = driver.clock();
        for (auto& inj : cluster_options.fault_injectors) inj->Arm();
        break;
      case Action::kDisarm:
        for (auto& inj : cluster_options.fault_injectors) inj->Disarm();
        break;
    }
  };

  for (std::int64_t idx = 0;
       idx <= static_cast<std::int64_t>(sigma.size()); ++idx) {
    if (auto it = plan.find(idx); it != plan.end()) {
      for (const Action& action : it->second) apply(action);
    }
    if (idx < static_cast<std::int64_t>(sigma.size())) {
      const Request& r = sigma[static_cast<std::size_t>(idx)];
      const std::size_t d = static_cast<std::size_t>(
          config.node_daemon[static_cast<std::size_t>(r.node)]);
      if (down[d]) {
        deferred[d].push_back(r);
      } else {
        inject(r);
      }
    }
  }
  // Schedules can leave a daemon down past the clamp point (begin == end
  // after clamping); make sure everything is healed before waiting.
  for (std::size_t d = 0; d < down.size(); ++d) {
    if (down[d]) {
      result.reinjected += cluster.RestartDaemon(static_cast<int>(d));
      down[d] = 0;
      for (const Request& r : deferred[d]) {
        inject(r);
        ++result.deferred;
      }
      deferred[d].clear();
    }
  }
  for (auto& inj : cluster_options.fault_injectors) inj->Disarm();

  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const std::int64_t heal_clock = driver.clock();

  // Conservative windows: every window closes at the post-heal quiescence
  // clock (recovery outlasts the nominal event end); see header comment.
  for (const std::int64_t begin : window_begin_clock) {
    if (begin >= 0) result.fault_windows.emplace_back(begin, heal_clock + 1);
  }
  std::sort(result.fault_windows.begin(), result.fault_windows.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& w : result.fault_windows) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  result.fault_windows = std::move(merged);

  if (options.final_probes) {
    for (NodeId u = 0; u < config.NumNodes(); ++u) {
      result.final_probe_ids.push_back(driver.InjectCombine(u));
    }
    driver.WaitAllCompleted();
    driver.WaitQuiescent();
  }

  for (const auto& inj : cluster_options.fault_injectors) {
    result.corrupted += inj->corrupted_count();
  }

  NetDriver::HarvestResult harvest = driver.Harvest();
  result.ghosts = std::move(harvest.ghosts);
  result.counts = harvest.counts;
  result.total_messages = driver.TotalMessages();
  result.replay_log_hwm = cluster.ReplayLogHighWater();
  cluster.Stop();
  if (!cluster.DaemonError().empty()) {
    throw std::runtime_error("net chaos: daemon failed: " +
                             cluster.DaemonError());
  }
  result.history = driver.history();
  return result;
}

}  // namespace treeagg
