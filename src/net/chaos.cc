#include "net/chaos.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/cluster.h"
#include "net/faulty_transport.h"

namespace treeagg {
namespace {

struct Action {
  // Enum order is the same-index execution order: heals before faults, so
  // a window ending where another begins heals first.
  enum Kind {
    kRestart,
    kDisarm,
    kDisarmGray,
    kDisarmLat,
    kResumeSend,
    kKill,
    kSever,
    kPauseSend,
    kArm,
    kArmGray,
    kArmLat
  } kind;
  int a = 0;  // daemon id (kill/restart/gray), source daemon (sever/pause/lat)
  int b = 0;  // second daemon (sever/pause), lat peer
  std::size_t window = 0;  // index into open-window bookkeeping
};

std::int64_t ClampIndex(std::int64_t t, std::size_t n) {
  return std::clamp<std::int64_t>(t, 0, static_cast<std::int64_t>(n));
}

// Widens `p` to cover [min_us, max_us] (first call just adopts it).
void WidenProfile(DelayProfile* p, std::int64_t min_us, std::int64_t max_us) {
  if (!p->valid()) {
    p->min_us = min_us;
    p->max_us = max_us;
  } else {
    p->min_us = std::min(p->min_us, min_us);
    p->max_us = std::max(p->max_us, max_us);
  }
}

}  // namespace

ChaosNetResult RunChaosNetWorkload(const std::vector<NodeId>& tree_parent,
                                   const RequestSequence& sigma,
                                   const FaultSchedule& schedule,
                                   const ChaosNetOptions& options) {
  if (schedule.HasFifoViolations()) {
    throw std::invalid_argument(
        "net chaos: dup/reorder are checker-validation faults with no "
        "convergence-safe network interpretation");
  }
  if (!options.cluster.fault_injectors.empty()) {
    throw std::invalid_argument(
        "net chaos: leave ChaosNetOptions::cluster.fault_injectors empty "
        "(the harness owns them)");
  }

  LocalCluster::Options cluster_options = options.cluster;
  // The injector delay profiles are immutable after construction, so the
  // node→daemon map must be known BEFORE the cluster exists. This is the
  // same computation LocalCluster's constructor performs.
  const std::vector<int> node_daemon =
      cluster_options.assignment.empty()
          ? AssignNodes(tree_parent, cluster_options.daemons,
                        cluster_options.placement)
          : cluster_options.assignment;
  const auto daemon_of = [&](NodeId u) {
    return node_daemon[static_cast<std::size_t>(u)];
  };

  double max_drop_p = 0;
  std::vector<DelayProfile> gray_profiles(
      static_cast<std::size_t>(cluster_options.daemons));
  std::vector<std::unordered_map<int, DelayProfile>> lat_profiles(
      static_cast<std::size_t>(cluster_options.daemons));
  bool wants_delay_profiles = false;
  for (const FaultEvent& e : schedule.events()) {
    switch (e.kind) {
      case FaultKind::kDrop:
        max_drop_p = std::max(max_drop_p, e.p);
        break;
      case FaultKind::kGray: {
        const std::size_t d = static_cast<std::size_t>(daemon_of(e.u));
        WidenProfile(&gray_profiles[d], e.delay_min * options.tick_us,
                     e.delay_max * options.tick_us);
        wants_delay_profiles = true;
        break;
      }
      case FaultKind::kLat: {
        const int d1 = daemon_of(e.u);
        const int d2 = daemon_of(e.v);
        if (d1 == d2) break;  // co-located: no wire to slow down
        WidenProfile(&lat_profiles[static_cast<std::size_t>(d1)][d2],
                     e.delay_min * options.tick_us,
                     e.delay_max * options.tick_us);
        WidenProfile(&lat_profiles[static_cast<std::size_t>(d2)][d1],
                     e.delay_min * options.tick_us,
                     e.delay_max * options.tick_us);
        wants_delay_profiles = true;
        break;
      }
      default:
        break;
    }
  }
  if (max_drop_p > 0 || wants_delay_profiles) {
    for (int d = 0; d < cluster_options.daemons; ++d) {
      PeerFaultInjector::Options inj;
      inj.corrupt_probability = max_drop_p;
      inj.seed = schedule.seed() * 0x9E3779B97F4A7C15ull +
                 static_cast<std::uint64_t>(d) + 1;
      inj.gray = gray_profiles[static_cast<std::size_t>(d)];
      inj.lat = lat_profiles[static_cast<std::size_t>(d)];
      cluster_options.fault_injectors.push_back(
          std::make_shared<PeerFaultInjector>(inj));
    }
  }

  LocalCluster cluster(tree_parent, cluster_options);
  NetDriver& driver = cluster.driver();
  const ClusterConfig& config = cluster.config();
  ChaosNetResult result;

  // Plan: injection index -> actions, heal actions (restart/disarm) sorted
  // before fault actions so a window ending where another begins heals
  // first.
  std::map<std::int64_t, std::vector<Action>> plan;
  std::vector<std::int64_t> window_begin_clock;  // filled as windows open
  for (const FaultEvent& e : schedule.events()) {
    const std::int64_t b = ClampIndex(e.begin, sigma.size());
    const std::int64_t t_end = ClampIndex(e.end, sigma.size());
    const std::size_t w = window_begin_clock.size();
    switch (e.kind) {
      case FaultKind::kCrash: {
        const int d = config.node_daemon[static_cast<std::size_t>(e.u)];
        plan[b].push_back({Action::kKill, d, 0, w});
        plan[t_end].push_back({Action::kRestart, d, 0, w});
        window_begin_clock.push_back(-1);
        break;
      }
      case FaultKind::kCrashGroup: {
        // Correlated fail-stop: every distinct hosting daemon dies at b and
        // restarts at e, sharing ONE fault window (the kill guard below
        // keeps the first kill's clock).
        std::set<int> group_daemons;
        for (const NodeId u : e.group) {
          group_daemons.insert(config.node_daemon[static_cast<std::size_t>(u)]);
        }
        for (const int d : group_daemons) {
          plan[b].push_back({Action::kKill, d, 0, w});
          plan[t_end].push_back({Action::kRestart, d, 0, w});
        }
        window_begin_clock.push_back(-1);
        break;
      }
      case FaultKind::kCut: {
        const int d1 = config.node_daemon[static_cast<std::size_t>(e.u)];
        const int d2 = config.node_daemon[static_cast<std::size_t>(e.v)];
        if (d1 != d2) {
          plan[b].push_back({Action::kSever, d1, d2, w});
          window_begin_clock.push_back(-1);
        }
        break;
      }
      case FaultKind::kSever: {
        // Asymmetric partition: pause only the from→to direction.
        const int d_from = config.node_daemon[static_cast<std::size_t>(e.u)];
        const int d_to = config.node_daemon[static_cast<std::size_t>(e.v)];
        if (d_from != d_to) {
          plan[b].push_back({Action::kPauseSend, d_from, d_to, w});
          plan[t_end].push_back({Action::kResumeSend, d_from, d_to, w});
          window_begin_clock.push_back(-1);
        }
        break;
      }
      case FaultKind::kGray: {
        const int d = config.node_daemon[static_cast<std::size_t>(e.u)];
        plan[b].push_back({Action::kArmGray, d, 0, w});
        plan[t_end].push_back({Action::kDisarmGray, d, 0, w});
        window_begin_clock.push_back(-1);
        break;
      }
      case FaultKind::kLat: {
        const int d1 = config.node_daemon[static_cast<std::size_t>(e.u)];
        const int d2 = config.node_daemon[static_cast<std::size_t>(e.v)];
        if (d1 != d2) {
          // Both directions slow down, one shared window.
          plan[b].push_back({Action::kArmLat, d1, d2, w});
          plan[b].push_back({Action::kArmLat, d2, d1, w});
          plan[t_end].push_back({Action::kDisarmLat, d1, d2, w});
          plan[t_end].push_back({Action::kDisarmLat, d2, d1, w});
          window_begin_clock.push_back(-1);
        }
        break;
      }
      case FaultKind::kDrop: {
        plan[b].push_back({Action::kArm, 0, 0, w});
        plan[t_end].push_back({Action::kDisarm, 0, 0, w});
        window_begin_clock.push_back(-1);
        break;
      }
      case FaultKind::kDelay:
        break;  // real TCP has real delays; gray/lat are the injected forms
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
        break;  // rejected above
    }
  }
  for (auto& [index, actions] : plan) {
    std::stable_sort(actions.begin(), actions.end(),
                     [](const Action& x, const Action& y) {
                       return x.kind < y.kind;  // heals before faults
                     });
  }

  std::vector<char> down(static_cast<std::size_t>(cluster_options.daemons), 0);
  std::vector<RequestSequence> deferred(
      static_cast<std::size_t>(cluster_options.daemons));
  // Currently-paused asymmetric directions. Pause flags live in the daemon
  // object and die with a kill, so a restart must re-apply any pause whose
  // source is the restarted daemon.
  std::set<std::pair<int, int>> paused_pairs;
  const auto inject = [&](const Request& r) {
    return r.op == ReqType::kWrite ? driver.InjectWrite(r.node, r.arg)
                                   : driver.InjectCombine(r.node);
  };
  // Window-clock sets are guarded so correlated kills (and the two arms of
  // a lat window) keep the FIRST action's clock.
  const auto open_window = [&](std::size_t w) {
    if (window_begin_clock[w] < 0) window_begin_clock[w] = driver.clock();
  };
  const auto apply = [&](const Action& action) {
    switch (action.kind) {
      case Action::kKill: {
        const std::size_t d = static_cast<std::size_t>(action.a);
        if (down[d]) break;  // overlapping crash windows: one kill
        open_window(action.window);
        cluster.KillDaemon(action.a);
        down[d] = 1;
        ++result.kills;
        break;
      }
      case Action::kRestart: {
        const std::size_t d = static_cast<std::size_t>(action.a);
        if (!down[d]) break;
        result.reinjected += cluster.RestartDaemon(action.a);
        down[d] = 0;
        for (const auto& [from, to] : paused_pairs) {
          if (from == action.a) cluster.SetSendPaused(from, to, true);
        }
        for (const Request& r : deferred[d]) {
          inject(r);
          ++result.deferred;
        }
        deferred[d].clear();
        break;
      }
      case Action::kSever:
        open_window(action.window);
        cluster.SeverPeerLink(action.a, action.b);
        ++result.severs;
        break;
      case Action::kPauseSend:
        open_window(action.window);
        cluster.SetSendPaused(action.a, action.b, true);
        paused_pairs.insert({action.a, action.b});
        ++result.paused;
        break;
      case Action::kResumeSend:
        cluster.SetSendPaused(action.a, action.b, false);
        paused_pairs.erase({action.a, action.b});
        break;
      case Action::kArm:
        open_window(action.window);
        for (auto& inj : cluster_options.fault_injectors) inj->Arm();
        break;
      case Action::kDisarm:
        for (auto& inj : cluster_options.fault_injectors) inj->Disarm();
        break;
      case Action::kArmGray:
        open_window(action.window);
        cluster_options.fault_injectors[static_cast<std::size_t>(action.a)]
            ->ArmGray();
        break;
      case Action::kDisarmGray:
        cluster_options.fault_injectors[static_cast<std::size_t>(action.a)]
            ->DisarmGray();
        break;
      case Action::kArmLat:
        open_window(action.window);
        cluster_options.fault_injectors[static_cast<std::size_t>(action.a)]
            ->ArmLat(action.b);
        break;
      case Action::kDisarmLat:
        cluster_options.fault_injectors[static_cast<std::size_t>(action.a)]
            ->DisarmLat(action.b);
        break;
    }
  };

  for (std::int64_t idx = 0;
       idx <= static_cast<std::int64_t>(sigma.size()); ++idx) {
    if (auto it = plan.find(idx); it != plan.end()) {
      for (const Action& action : it->second) apply(action);
    }
    if (idx < static_cast<std::int64_t>(sigma.size())) {
      const Request& r = sigma[static_cast<std::size_t>(idx)];
      const std::size_t d = static_cast<std::size_t>(
          config.node_daemon[static_cast<std::size_t>(r.node)]);
      if (down[d]) {
        deferred[d].push_back(r);
      } else {
        inject(r);
      }
    }
  }
  // Schedules can leave a daemon down past the clamp point (begin == end
  // after clamping); make sure everything is healed before waiting.
  for (std::size_t d = 0; d < down.size(); ++d) {
    if (down[d]) {
      result.reinjected += cluster.RestartDaemon(static_cast<int>(d));
      down[d] = 0;
      for (const Request& r : deferred[d]) {
        inject(r);
        ++result.deferred;
      }
      deferred[d].clear();
    }
  }
  // Leftover-heal sweep: clamped windows can leave a direction paused or a
  // delay profile armed past the last injection. Everything must be live
  // before waiting for completion, or held frames never drain.
  for (const auto& [from, to] : paused_pairs) {
    cluster.SetSendPaused(from, to, false);
  }
  paused_pairs.clear();
  for (auto& inj : cluster_options.fault_injectors) inj->DisarmAll();

  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const std::int64_t heal_clock = driver.clock();

  // Conservative windows: every window closes at the post-heal quiescence
  // clock (recovery outlasts the nominal event end); see header comment.
  for (const std::int64_t begin : window_begin_clock) {
    if (begin >= 0) result.fault_windows.emplace_back(begin, heal_clock + 1);
  }
  std::sort(result.fault_windows.begin(), result.fault_windows.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> merged;
  for (const auto& w : result.fault_windows) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  result.fault_windows = std::move(merged);

  if (options.final_probes) {
    for (NodeId u = 0; u < config.NumNodes(); ++u) {
      result.final_probe_ids.push_back(driver.InjectCombine(u));
    }
    driver.WaitAllCompleted();
    driver.WaitQuiescent();
  }

  for (const auto& inj : cluster_options.fault_injectors) {
    result.corrupted += inj->corrupted_count();
    result.delayed += inj->delayed_count();
  }

  NetDriver::HarvestResult harvest = driver.Harvest();
  result.ghosts = std::move(harvest.ghosts);
  result.counts = harvest.counts;
  result.total_messages = driver.TotalMessages();
  result.replay_log_hwm = cluster.ReplayLogHighWater();
  result.frames_held = cluster.FramesHeldTotal();
  cluster.Stop();
  if (!cluster.DaemonError().empty()) {
    throw std::runtime_error("net chaos: daemon failed: " +
                             cluster.DaemonError());
  }
  result.history = driver.history();
  return result;
}

}  // namespace treeagg
