// treeagg-snap-v1: disk durability for the networked backend.
//
// A snapshot file persists one daemon's full durable protocol state — the
// DaemonDurableState below (hosted LeaseNode states, quiescence counters,
// peer-session replay logs and processed counts, the local queue) — so a
// daemon killed with SIGKILL can restart from `--state-dir` and resume as
// if it had only paused.
//
// File layout (all integers little-endian):
//
//   [16B magic "treeagg-snap-v1\n"] [u32 daemon_id] [u64 payload_len]
//   [u32 crc32(payload)] [payload_len bytes of payload]
//
// The payload serializes the state with the same primitives as the wire
// codec; logged frames and queued messages are embedded as complete wire
// frames, so the one battle-tested Message codec covers both formats.
// Decoding never throws: a wrong magic, truncated file, checksum mismatch,
// or inconsistent payload is reported as a clean error string.
//
// Atomicity: SaveSnapshot writes `daemon.snap.tmp`, fsyncs it, renames it
// over `daemon.snap`, and fsyncs the directory. A crash at any point
// leaves either the old snapshot or the new one, never a torn file; a
// stale `.tmp` from a crashed writer is ignored by LoadSnapshot and
// overwritten by the next save.
//
// Soundness (write-ahead rule): recovery is only exactly-once if no frame
// reaches a socket before the snapshot covers the state that generated it.
// The daemon therefore persists before every flush point; the
// `snapshot_interval_frames` knob weakens this deliberately (fewer fsyncs,
// a crash inside the lag window may lose convergence) and is 1 by default.
#ifndef TREEAGG_NET_DURABILITY_H_
#define TREEAGG_NET_DURABILITY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/lease_node.h"
#include "core/message.h"
#include "net/wire.h"
#include "sim/trace.h"  // MessageCounts

namespace treeagg {

// Durability knobs of one daemon (NodeDaemon::Options::durability).
struct DurabilityOptions {
  // Per-daemon snapshot directory. Empty disables disk durability: the
  // state stays exportable in memory (the fail-stop model of LocalCluster)
  // but does not survive real process death.
  std::string state_dir;
  // Persist once this many protocol frames have been processed since the
  // last snapshot, checked before every socket flush. 1 (the default) is
  // the write-ahead rule above; larger values trade durability lag for
  // fewer fsyncs.
  std::uint64_t snapshot_interval_frames = 1;
  // Also persist whenever a status probe observes the daemon locally
  // quiescent (sent == received, empty local queue).
  bool snapshot_on_quiescence = true;
  // Send a cumulative kPeerAck after this many durably-processed frames
  // per peer session, letting the peer GC its replay log. 0 disables acks
  // (sessions then retain their full logs, the pre-v3 behaviour).
  std::uint64_t ack_interval = 16;
};

// Everything a crashed daemon must remember to resume as if it had only
// paused: hosted-node protocol state, quiescence counters, and the peer
// sessions (replay logs + processed counts). Plain data, copyable. Lives
// here (not in NodeDaemon) so the snapshot codec and the daemon can share
// it without an include cycle; NodeDaemon::DurableState aliases it.
struct DaemonDurableState {
  std::vector<std::pair<NodeId, LeaseNode::DurableState>> nodes;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  MessageCounts counts;
  struct SessionState {
    int peer = -1;
    std::vector<WireFrame> log;   // kProtocol frames routed there, unGC'd
    std::uint64_t log_base = 0;   // frames GC'd off the front (cumulative)
    std::uint64_t processed = 0;  // frames from `peer` processed so far
  };
  std::vector<SessionState> sessions;
  std::vector<Message> local_queue;  // empty between frames, kept for form
  // Full node -> daemon placement map as this daemon last knew it. Nodes
  // migrate between daemons at runtime (wire-v6 kMigrateIn / kMigrateCommit
  // / kPlacementUpdate), so the startup cluster config may be stale after a
  // crash; a restarting daemon adopts a non-empty restored map before
  // building its nodes and peer sessions. Empty in pre-placement snapshots
  // (the field is a trailing-optional payload extension): the config map is
  // then authoritative, which is exactly the legacy behaviour.
  std::vector<int> node_daemon;
};

// Deep structural equality (WireFrame and Message have no operator==; the
// ghost-log piggybacks are compared by contents, not by pointer).
bool DurableStatesEqual(const DaemonDurableState& a,
                        const DaemonDurableState& b);

inline constexpr char kSnapshotMagic[] = "treeagg-snap-v1\n";  // 16 bytes + NUL

// Standalone encoding of one node's durable protocol state — the payload
// of the wire-v6 kMigrateState / kMigrateIn migration frames. Uses the
// same codec as the snapshot's per-node section, so a migrated node's
// state round-trips bit-identically with what a crash-restart would have
// restored. DecodeNodeStateBlob returns false on truncated, over-long, or
// inconsistent bytes.
std::vector<std::uint8_t> EncodeNodeStateBlob(const LeaseNode::DurableState& s);
bool DecodeNodeStateBlob(const std::uint8_t* data, std::size_t len,
                         LeaseNode::DurableState* s);

// CRC-32 (IEEE 802.3 polynomial, the zlib convention) of `data`.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t len);

// --- codec --------------------------------------------------------------

std::vector<std::uint8_t> EncodeSnapshot(const DaemonDurableState& state,
                                         int daemon_id);

// Decodes a whole snapshot image. On failure returns false and fills
// *error with a one-line reason; *state and *daemon_id are untouched then.
bool DecodeSnapshot(const std::uint8_t* data, std::size_t len,
                    DaemonDurableState* state, int* daemon_id,
                    std::string* error);

// --- files --------------------------------------------------------------

std::string SnapshotPath(const std::string& dir);
std::string SnapshotTempPath(const std::string& dir);

// Atomically persists `state` under `dir` (created if missing):
// write-temp + fsync + rename + directory fsync. Returns false (and fills
// *error) on any filesystem failure.
bool SaveSnapshot(const std::string& dir, const DaemonDurableState& state,
                  int daemon_id, std::string* error);

enum class SnapshotLoad {
  kOk = 0,
  kNotFound,  // no snapshot file: a fresh start, not an error
  kError,     // unreadable, corrupted, or written by a different daemon
};

// Loads and validates `dir`'s snapshot. A snapshot whose recorded daemon
// id differs from `expected_daemon_id` is kError (two daemons pointed at
// one directory). A stale `.tmp` is ignored.
SnapshotLoad LoadSnapshot(const std::string& dir, DaemonDurableState* state,
                          int expected_daemon_id, std::string* error);

// Deletes the snapshot (and any stale temp file) under `dir`, for
// fail-stop-with-amnesia restarts. Missing files are not an error.
void RemoveSnapshot(const std::string& dir);

}  // namespace treeagg

#endif  // TREEAGG_NET_DURABILITY_H_
