#include "net/query_client.h"

#include <poll.h>

#include <stdexcept>
#include <string>
#include <utility>

#include "net/wire.h"

namespace treeagg {

QueryClient::QueryClient(ClusterConfig config)
    : QueryClient(std::move(config), TransportOptions()) {}

QueryClient::QueryClient(ClusterConfig config, TransportOptions transport)
    : config_(std::move(config)), transport_(transport) {
  config_.Validate();
  conns_.resize(config_.daemons.size());
}

QueryClient::~QueryClient() = default;

FrameConn* QueryClient::ConnForNode(NodeId node) {
  if (node < 0 || node >= config_.NumNodes()) {
    throw std::invalid_argument("QueryClient: node " + std::to_string(node) +
                                " outside the tree");
  }
  const int daemon = config_.node_daemon[static_cast<std::size_t>(node)];
  auto& conn = conns_[static_cast<std::size_t>(daemon)];
  if (conn == nullptr || !conn->open()) {
    const ClusterConfig::DaemonAddr& addr =
        config_.daemons[static_cast<std::size_t>(daemon)];
    std::string err;
    ScopedFd fd = ConnectWithBackoff(addr.host, addr.port, transport_, &err);
    if (!fd.valid()) {
      throw std::runtime_error("QueryClient: daemon " + std::to_string(daemon) +
                               ": " + err);
    }
    // No hello: the first kQuery below is what classifies this connection
    // as a read-tier client on the daemon side.
    conn = std::make_unique<FrameConn>(std::move(fd), transport_);
  }
  return conn.get();
}

query::QueryAnswer QueryClient::Query(NodeId node) {
  FrameConn* conn = ConnForNode(node);
  WireFrame q;
  q.type = FrameType::kQuery;
  q.req = next_req_++;
  q.node = node;
  conn->SendFrame(q);
  while (conn->open() && conn->WantWrite()) {
    if (!conn->Flush()) break;
    if (conn->WantWrite()) {
      pollfd pfd{conn->fd(), POLLOUT, 0};
      ::poll(&pfd, 1, 10);
    }
  }
  const std::int64_t deadline = NowMs() + transport_.io_timeout_ms;
  WireFrame frame;
  for (;;) {
    const DecodeStatus status = conn->NextFrame(&frame);
    if (status == DecodeStatus::kOk) {
      if (frame.type != FrameType::kQueryResp) {
        throw std::runtime_error(std::string("QueryClient: unexpected ") +
                                 ToString(frame.type) +
                                 " on a read connection");
      }
      if (frame.req != q.req) {
        // A stale answer (an earlier timed-out query); keep reading.
        frame = WireFrame{};
        continue;
      }
      query::QueryAnswer answer;
      answer.epoch = frame.epoch;
      answer.value = frame.value;
      answer.log_prefix = frame.log_prefix;
      return answer;
    }
    if (status != DecodeStatus::kNeedMore) {
      throw std::runtime_error("QueryClient: " + conn->error());
    }
    if (NowMs() >= deadline) {
      throw std::runtime_error("QueryClient: timed out waiting for node " +
                               std::to_string(node) + " (io_timeout_ms = " +
                               std::to_string(transport_.io_timeout_ms) + ")");
    }
    pollfd pfd{conn->fd(), POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (!conn->ReadAvailable()) {
      throw std::runtime_error(
          "QueryClient: daemon dropped the read connection" +
          (conn->error().empty() ? std::string() : ": " + conn->error()));
    }
  }
}

}  // namespace treeagg
