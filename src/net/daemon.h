// NodeDaemon: one process (or thread) of the networked backend, hosting
// one-or-more tree nodes.
//
// The daemon runs the UNMODIFIED Figure 1/6 mechanism and policy objects
// from src/core: each hosted node is a LeaseNode whose Transport routes by
// the cluster's node -> daemon map — messages between two nodes of the
// same daemon go through an in-memory FIFO queue, messages crossing a
// daemon boundary are encoded as treeagg-wire-v2 frames over TCP. Channel
// semantics therefore match the paper's model end to end: reliable FIFO
// per directed edge (the local queue is FIFO; TCP is FIFO; every edge is
// carried by exactly one of them), even across connection drops and
// crash-restarts, thanks to the peer-session layer below.
//
// Threading (multi-reactor): the primary reactor is a poll() loop over
// the listener, the driver connection, and the peer connections — with
// Options::reactors == 1 (the default) the daemon is single-threaded and
// behaves exactly as before. With reactors = N > 1 the hosted nodes are
// sharded across N reactors along contiguous DFS-preorder blocks (the
// same cut "subtree" placement uses, so hot tree edges stay
// reactor-local); reactors 1..N-1 are worker threads that own their
// shard's LeaseNodes outright. All sockets, peer sessions, replay logs,
// durability, and metrics stay on the primary. Cross-reactor messages hop
// through the primary over a pair of SPSC rings per worker (inbox:
// primary->worker, outbox: worker->primary), which keeps every ring
// single-producer/single-consumer and every per-edge path unique — FIFO
// per directed tree edge is preserved by construction. Each inbound frame
// is still handled to completion on its owning reactor; a stop-the-world
// pause barrier (PauseWorkers) parks every worker between messages before
// any snapshot, status probe, or harvest reads cross-shard state.
//
// Peer sessions (crash-restart recovery): every peer link keeps a session
// that outlives its TCP connection — a replay log of every kProtocol frame
// ever routed to that peer, and a count of frames *processed* from it.
// The kPeerHello handshake carries the processed count both directions;
// each side resumes by replaying its log from the other's count, then goes
// Live. Outbound frames routed while a link is not Live park in the log
// (RouteSend never fails on a closed connection). Because `received` is
// only counted at processing time and replay retransmits exactly the
// unprocessed suffix, every protocol message is delivered exactly once per
// directed edge, in order, no matter how often the connection drops.
//
// Crash-restart: ExportDurable() (after Run() returns) snapshots the full
// protocol state — every hosted LeaseNode's durable state, the quiescence
// counters, and the peer-session logs/counts. RestoreDurable() on a fresh
// NodeDaemon re-applies it before Run(); ConnectPeers then resumes every
// session via the hello handshake. A crash is thereby a pure pause of
// protocol state: the Figure 1/6 mechanism itself is untouched.
//
// Disk durability (treeagg-snap-v1, net/durability.h): with
// Options::durability.state_dir set, the same DurableState is persisted
// atomically to disk and reloaded by Run() on start, so the daemon
// survives real process death (SIGKILL), not just a fail-stop pause.
// Soundness hinges on the write-ahead rule: the daemon persists before
// every socket flush (PersistIfDue), so no peer or driver ever observes an
// effect of state a restart would forget. The `snapshot_interval_frames`
// knob relaxes this deliberately; 1 (the default) is the sound mode.
//
// Replay-log GC (wire v3): each session advertises its durably-processed
// count — piggybacked on kPeerHello and sent periodically as kPeerAck
// every `ack_interval` frames — and the peer garbage-collects the acked
// prefix of its replay log (`log_base` counts the frames dropped off the
// front). Replay-log memory is thereby bounded by the unacked window. A
// session whose peer spoke a v2 hello never receives acks and keeps its
// full log, and we encode v2 on that connection — old endpoints interop.
//
// Quiescence accounting: `sent` counts every protocol message emitted by a
// hosted node (local or remote, transmitted or parked), `received` counts
// every delivery to a hosted node. Summed across daemons, sent == received
// with all local queues empty means no protocol message is in flight; the
// driver confirms with two identical snapshots (the counters are monotone,
// and both survive crash-restarts inside the durable snapshot).
//
// Connection bring-up: the daemon with the smaller id initiates each peer
// link (ConnectWithBackoff tolerates daemons starting in any order) and
// re-initiates it with backoff when an established link drops; the
// accepting side learns the initiator's identity from its kPeerHello and
// replies with its own. The driver connection is recognized by
// kDriverHello; driver-bound frames produced while no driver is connected
// (mid-restart) wait in an outbox.
//
// Online re-placement (wire v6): the driver can move a hosted node to
// another daemon while the cluster is quiescent. The source exports the
// node's durable state as a blob (kMigrateOut -> kMigrateState) but keeps
// hosting until the commit; the target installs the blob (kMigrateIn),
// seeding a fresh snapshot slot with the source's published epoch so
// query epochs stay monotone per node; the source then drops the node
// (kMigrateCommit) and every daemon adopts the full new map
// (kPlacementUpdate), bootstrapping any peer links the new placement
// creates. Because the source re-exports identically until the commit and
// install/commit are idempotent, a SIGKILL anywhere in the sequence is
// recovered by restarting the dead daemon (its snapshot carries the
// placement map it last knew) and re-driving the same plan. Per-tree-edge
// traffic counters (kTrafficReq/kTrafficResp) feed the placement
// optimizer in src/place.
#ifndef TREEAGG_NET_DAEMON_H_
#define TREEAGG_NET_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "common/types.h"
#include "core/lease_node.h"
#include "net/cluster.h"
#include "net/durability.h"
#include "net/faulty_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "query/snapshot.h"
#include "sim/trace.h"
#include "tree/topology.h"

namespace treeagg {

// NodeDaemon construction options. A namespace-scope struct (rather than a
// nested one) because its default member initializers are needed by the
// constructor's default argument, which C++ forbids for a nested class
// still being parsed; NodeDaemon::Options remains valid via the alias.
struct NodeDaemonOptions {
  TransportOptions transport;
  // Optional frame-level fault injection on outbound peer frames (chaos
  // runs). The injector is shared so the harness can arm/disarm it.
  std::shared_ptr<PeerFaultInjector> fault_injector;
  // Disk snapshots + cumulative-ack GC (see net/durability.h). The
  // state_dir, when set, is THIS daemon's own directory (callers
  // hosting several daemons give each its own subdirectory).
  DurabilityOptions durability;
  // Observability. metrics=true instruments the daemon (per-kind
  // message counters, transport byte/frame counters, queue-depth
  // gauges, frame-handling latency histogram) into a per-daemon
  // registry. metrics_port >= 0 additionally serves Prometheus
  // text-format /metrics over HTTP on that port (0 = OS-assigned;
  // implies metrics=true). -1 (the default) serves nothing, and with
  // metrics=false the daemon carries no registry at all — the hot
  // paths then take their null-hook branch.
  bool metrics = false;
  int metrics_port = -1;
  // Poll/worker reactors sharing this daemon's hosted nodes. 1 (the
  // default) keeps the classic single-threaded daemon: no worker threads,
  // no rings, byte-identical behavior. N > 1 shards the hosted nodes
  // across N reactors by contiguous DFS-preorder blocks; values larger
  // than the hosted-node count are clamped.
  int reactors = 1;
};

class NodeDaemon {
 public:
  using Options = NodeDaemonOptions;

  // Everything a crashed daemon must remember to resume as if it had only
  // paused (see DaemonDurableState in net/durability.h, where it lives so
  // the snapshot codec can share it).
  using DurableState = DaemonDurableState;

  NodeDaemon(int daemon_id, ClusterConfig config, Options options = {});
  ~NodeDaemon();

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  // Creates the listening socket on this daemon's configured address.
  // Throws std::runtime_error on failure. Must precede Run().
  void Bind();

  // The actually-bound port; resolves a configured port 0 to the OS's
  // ephemeral choice. Valid after Bind().
  std::uint16_t BoundPort() const;

  // Overwrites the peer address table with resolved ports (in-process
  // clusters bind every daemon with port 0 first, then distribute the
  // resolved ports before any Run() starts).
  void SetResolvedPorts(const std::vector<std::uint16_t>& ports);

  // Serves until a kShutdown frame, driver disconnect, or RequestStop().
  // Never throws; a fatal problem is reported through error().
  void Run();

  // Thread-safe: wakes the poll loop and makes Run() return. Used by
  // in-process clusters on teardown and by the chaos harness as the kill.
  void RequestStop();

  // Thread-safe: severs the TCP connection to `peer` (the daemon thread
  // performs the shutdown on its next loop turn). Both sides recover
  // through the session-resume handshake — this is the transient-partition
  // fault, not an error.
  void RequestSeverPeer(int peer);

  // Thread-safe: while paused, outbound peer frames to `peer` accumulate
  // in this daemon's held queue instead of hitting the wire; the reverse
  // direction (frames FROM the peer) is untouched, and so is the TCP
  // connection. This is the asymmetric-partition fault: one direction of
  // an edge stops carrying traffic while the other stays live. Un-pausing
  // releases the held frames in FIFO order.
  void RequestPauseSend(int peer, bool paused);

  // Cumulative count of frames that ever entered the held queue (pause or
  // injected delay) — the chaos harness asserts the fault window was not
  // vacuously empty.
  std::uint64_t FramesHeld() const {
    return frames_held_.load(std::memory_order_relaxed);
  }

  // Snapshot of the durable state; call after Run() has returned (the
  // in-process cluster joins the daemon thread first).
  DurableState ExportDurable() const;
  // Stages `state` to be re-applied inside Run() after the nodes are
  // built. Call before Bind()/Run() on a freshly constructed daemon with
  // the same id and cluster config.
  void RestoreDurable(DurableState state);

  // Empty after a clean Run(); otherwise the reason it aborted.
  const std::string& error() const { return error_; }

  // Thread-safe observability counters (tests and the chaos harness read
  // them while the daemon runs).
  // Largest replay-log length any peer session ever reached — the number
  // the cumulative-ack GC is supposed to keep bounded.
  std::uint64_t ReplayLogHighWater() const {
    return replay_log_hwm_.load(std::memory_order_relaxed);
  }
  // Snapshots persisted to the state dir (0 when disk durability is off).
  std::uint64_t SnapshotsWritten() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }

  // The daemon's metrics registry; null unless Options enabled metrics.
  // Counters are lock-free, so reading while the daemon runs is safe.
  const obs::MetricsRegistry* metrics() const { return registry_.get(); }

  // The bound /metrics port (resolves port 0 to the OS's choice); 0 when
  // no metrics listener is configured. Valid after Bind().
  std::uint16_t MetricsPort() const;

 private:
  class NetTransport final : public Transport {
   public:
    explicit NetTransport(NodeDaemon* daemon) : daemon_(daemon) {}
    void Send(Message m) override;

   private:
    NodeDaemon* daemon_;
  };

  // A connection whose role is not yet known (no hello frame seen).
  struct PendingConn {
    std::unique_ptr<FrameConn> conn;
  };

  // One peer link's state across TCP connections. Down: no usable
  // connection (initiator side schedules reconnect attempts). AwaitResume:
  // connection open, our hello sent, waiting for the peer's resume count.
  // Live: resume done, frames flow; RouteSend transmits immediately.
  struct PeerSession {
    enum class State { kDown, kAwaitResume, kLive };
    State state = State::kDown;
    // Replay log of un-GC'd kProtocol frames. Frame numbers are absolute
    // per directed edge: log[i] is frame number log_base + i, and the
    // peer's cumulative acks erase the durably-processed prefix.
    std::vector<WireFrame> log;
    std::uint64_t log_base = 0;   // frames GC'd off the front (absolute)
    std::uint64_t sent_upto = 0;  // absolute count transmitted on this conn
    std::uint64_t processed = 0;  // inbound frames processed from the peer
    // `processed` as of the last persisted snapshot — the only count safe
    // to ack (the peer GCs on it permanently). Tracks `processed` exactly
    // when disk durability is off (memory-durable fail-stop model).
    std::uint64_t durable_processed = 0;
    std::uint64_t last_acked = 0;  // highest ack value sent to the peer
    // Wire dialect of this session, set from the peer's hello. A v2 peer
    // gets v2 frames back and never receives kPeerAck.
    std::uint8_t wire_version = kWireVersion;
    std::int64_t next_attempt_ms = 0;  // initiator reconnect schedule
    std::int64_t backoff_ms = 0;
    std::int64_t give_up_ms = 0;  // Fail when still down past this
  };

  // One worker reactor (reactors 1..N-1; reactor 0 is the primary poll
  // loop and needs no struct). The worker thread owns `local` and is the
  // sole consumer of `inbox` / sole producer of `outbox`.
  struct Reactor {
    std::deque<Message> local;  // same-reactor FIFO (worker thread only)
    SpscRing<WireFrame> inbox;   // primary -> worker
    SpscRing<WireFrame> outbox;  // worker -> primary
    ScopedFd wake;               // eventfd the idle worker sleeps on
    std::thread thread;
  };

  void BuildNodes();
  void ApplyRestore();
  void ConnectPeers();
  // Recomputes peer_ids_ (daemons sharing a tree edge with this one) from
  // the current placement map. Constructor, restored-map adoption, and
  // the migration handlers all route through here.
  void RecomputePeers();

  // --- reactor layer ------------------------------------------------------
  // Computes node_reactor_ (contiguous DFS-preorder blocks over the hosted
  // nodes) and allocates the worker Reactor structs. Primary thread, before
  // Run()'s loop.
  void BuildReactors();
  void StartWorkers();
  // Sets the stop flag, wakes every worker (parked or polling), joins.
  void StopReactors();
  void WorkerLoop(int reactor);
  // Handles one inbox frame on the worker thread, draining the local FIFO
  // it fills. kProtocol delivers to the owned node; kInject* applies and
  // pushes the completion to the outbox.
  void HandleWorkerFrame(Reactor& r, WireFrame frame);
  void DrainReactorLocal(Reactor& r);
  // Primary: pops every worker outbox to empty. kProtocol frames forward
  // through ForwardProtocol; kWriteDone/kCombineDone go to the driver.
  void DrainOutboxes();
  // Primary: routes a protocol frame that reached the primary (from a
  // worker outbox or from RouteSend on the primary) — deliver locally,
  // dispatch to the owning worker, or append to the peer session log and
  // transmit.
  void ForwardProtocol(WireFrame f);
  void DispatchToReactor(int reactor, WireFrame f);
  // Worker: pushes a frame onto its own outbox and wakes the primary.
  void PushToPrimary(WireFrame f);
  // Stop-the-world barrier. PauseWorkers returns with every worker parked
  // between messages (their local FIFOs empty, their rings quiescent on
  // the worker side); nestable — only the outermost pair acts. No-ops
  // while no workers run.
  void PauseWorkers();
  void ResumeWorkers();
  void WakeWorker(Reactor& r);
  void WakePrimary();
  bool HostsNode(NodeId u) const {
    return config_.node_daemon[static_cast<std::size_t>(u)] == daemon_id_;
  }
  LeaseNode& NodeRef(NodeId u) { return *nodes_[static_cast<std::size_t>(u)]; }
  bool Initiates(int peer) const { return daemon_id_ < peer; }

  // True once every peer session is Live. Until then no non-hello frame is
  // handled: an inject or forwarded protocol message processed earlier
  // could need to route onto a link that is not resumed yet. Deferred
  // bytes wait in the kernel socket buffer (poll is level-triggered),
  // except frames read behind a hello during classification, which wait in
  // that connection's FrameReader until DrainParkedFrames().
  bool PeersReady() const;
  void DrainParkedFrames();

  void RouteSend(Message m);        // NetTransport::Send body (any reactor)
  void DrainLocal();                // deliver/dispatch the primary's queue
  // Shared body of kProtocol and per-element kBatch handling on the
  // primary: session accounting, then deliver or dispatch by reactor.
  void HandleProtocolMessage(Message m, int from_peer);
  void OnCombineDone(NodeId node, CombineToken token, Real value);
  // `from_peer`: daemon id of the peer connection the frame arrived on,
  // or -1 for the driver connection (session accounting needs the origin).
  // The outer function wraps the dispatch in the frame-handling latency
  // histogram when metrics are on.
  void HandleFrame(WireFrame frame, int from_peer);
  void HandleFrameInner(WireFrame frame, int from_peer);
  void HandleDriverEof();
  bool DrainConn(FrameConn* conn, int from_peer);
  void FlushAll();
  void Fail(std::string why);
  std::unique_ptr<FrameConn> TakePending(FrameConn* conn);
  void ErasePending(FrameConn* conn);

  // --- peer-session layer -----------------------------------------------
  // Sends `frame` toward `peer`. When the direction is paused
  // (RequestPauseSend), the injector prices a delay (gray/WAN profiles),
  // or earlier frames are still held, the frame parks in the per-peer
  // held queue — FIFO per directed edge is preserved because a non-empty
  // queue always appends. Otherwise it transmits immediately. The caller
  // has already appended the frame to the log, so a held frame lost to a
  // connection drop is recovered by the resume replay.
  void TransmitToPeer(int peer, const WireFrame& frame);
  // The wire half of TransmitToPeer: consults the fault injector (which
  // may put a damaged copy on the wire or sever the link afterwards) and
  // sends on the live connection.
  void TransmitNow(int peer, const WireFrame& frame);
  // Primary loop: transmits every held frame whose deadline passed on a
  // non-paused direction.
  void ReleaseHeldFrames();
  // Earliest due_us across non-paused held queues; -1 when none (used to
  // clamp the poll timeout so a held frame cannot stall until an
  // unrelated wake-up).
  std::int64_t EarliestHeldDueUs() const;
  // Marks the link Down, drops the connection, and (initiator side)
  // schedules reconnect attempts.
  void MarkPeerDown(int peer);
  // Replays log[resume:] and marks the link Live.
  void GoLive(int peer, std::uint64_t resume);
  // Handshake step on a newly established link: our hello with our
  // processed count.
  void SendPeerHello(int peer);
  // Initiator side: attempts due reconnects (bounded short connects).
  void MaybeReconnectPeers();
  // Pre-gate handling of an AwaitResume connection: consume the hello
  // (and only the hello); later frames stay parked for the gate replay.
  void HandleAwaitResume(int peer);

  // Driver-bound frames park here while no driver connection is open
  // (e.g. the daemon restarted and the driver has not reconnected yet).
  void SendToDriver(const WireFrame& frame);

  // --- placement / migration layer (wire v6, driver connection only) ----
  void HandleTrafficReq(const WireFrame& frame);
  void HandleMigrateOut(const WireFrame& frame);
  void HandleMigrateIn(const WireFrame& frame);
  void HandleMigrateCommit(const WireFrame& frame);
  void HandlePlacementUpdate(const WireFrame& frame);
  // Re-sizes the snapshot table to the current hosted set, carrying each
  // surviving node's published epoch forward; `seeded_node` (when valid)
  // is seeded with `seeded_epoch` instead — the migrated-in node's epoch
  // from the source daemon. Caller holds the worker pause.
  void RebuildSnapshotTable(NodeId seeded_node, std::uint64_t seeded_epoch);
  // Reconciles peer sessions with a changed placement map: recomputes
  // peer_ids_, schedules reconnect bootstrap for initiator-side links the
  // new placement creates, and re-latches the bring-up gate until every
  // (possibly new) session is Live. Existing Live sessions are kept:
  // per-pair replay logs and processed counts are independent of which
  // node's messages ride them, and re-placement runs at quiescence.
  void ReconcilePeerSessions();

  // --- durability layer ---------------------------------------------------
  bool DurableToDisk() const { return !options_.durability.state_dir.empty(); }
  // Records a protocol-state mutation (drives the snapshot trigger).
  void MarkDirty();
  // Persists a snapshot when dirty and (unless `force`) the frame-count
  // trigger has fired. Called before every socket flush (the write-ahead
  // rule), at quiescence, and once more on exit. A failed save is fatal.
  void PersistIfDue(bool force);
  // Erases the log prefix the peer has durably processed (cumulative ack).
  void GcSessionLog(int peer, std::uint64_t ack);
  // Sends kPeerAck on every live v3 session whose durable count moved by
  // at least ack_interval since the last ack.
  void MaybeSendAcks();
  // Shared body of ExportDurable() (which the cluster calls after Run()
  // returns) and the snapshot writer (which runs on the daemon thread).
  DurableState BuildDurable() const;

  // --- observability layer ----------------------------------------------
  // One half-open HTTP connection on the /metrics listener. Tiny state
  // machine: buffer the request head, write one response, close.
  struct MetricsConn {
    ScopedFd fd;
    std::string in;
    std::string out;
    std::size_t out_pos = 0;
    bool closing = false;
  };
  // --- snapshot query tier ----------------------------------------------
  // A dedicated read-tier connection: any accepted connection whose first
  // frame is kQuery (instead of a hello) becomes one. Served entirely on
  // the primary poll loop; the seqlock slots make the reads safe against
  // worker reactors publishing concurrently. `closing` marks a half-closed
  // client whose queued answers still need flushing.
  struct QueryClient {
    std::unique_ptr<FrameConn> conn;
    bool closing = false;
  };
  // Fills *resp with the snapshot answer for query `q`; false when the
  // queried node is not hosted here (or out of range).
  bool BuildQueryResp(const WireFrame& q, WireFrame* resp);
  // Answers one kQuery on a query-client connection; false drops the
  // connection (malformed query or the node is not hosted here).
  bool ServeQuery(const WireFrame& q, FrameConn* conn);
  // Advances one query-client connection; returns false when it should be
  // closed.
  bool ServiceQueryConn(QueryClient& qc, short revents);

  // Builds the registry and the hot-path metric bundles (constructor).
  void SetUpMetrics();
  // Lazily registers the per-peer-edge counters for `peer` (first
  // cross-daemon message routed there).
  void EnsurePeerCounters(int peer);
  // Wraps a freshly accepted/established socket, attaching the shared
  // transport counters when metrics are on.
  std::unique_ptr<FrameConn> NewFrameConn(ScopedFd fd);
  // Refreshes point-in-time gauges, then renders the exposition text.
  std::string RenderMetricsPage();
  // Advances one HTTP connection; returns false when it should be closed.
  bool ServiceMetricsConn(MetricsConn& mc, short revents);

  const int daemon_id_;
  ClusterConfig config_;
  Options options_;
  std::unique_ptr<Tree> tree_;
  NetTransport transport_;
  std::vector<std::unique_ptr<LeaseNode>> nodes_;  // by NodeId; null if remote
  std::vector<int> peer_ids_;  // daemons sharing at least one tree edge

  // A frame waiting out a pause-send window or an injected delay before it
  // may touch the wire. Held frames are invisible on the wire (no format
  // change an old-dialect peer could observe) and recoverable from the
  // session log if the connection drops first.
  struct HeldFrame {
    std::int64_t due_us = 0;
    WireFrame frame;
  };

  TcpListener listener_;
  std::vector<std::unique_ptr<FrameConn>> peers_;  // by daemon id; may be null
  std::vector<PeerSession> sessions_;              // by daemon id
  std::vector<std::deque<HeldFrame>> held_;        // by daemon id
  // Per-destination pause flags (harness thread writes, daemon reads).
  std::unique_ptr<std::atomic<bool>[]> pause_send_;
  std::atomic<std::uint64_t> frames_held_{0};
  std::unique_ptr<FrameConn> driver_;
  std::vector<PendingConn> pending_;
  std::deque<WireFrame> driver_outbox_;
  std::vector<QueryClient> query_conns_;

  // Snapshot query tier: one seqlock slot per HOSTED node (snap_index_
  // maps NodeId -> slot, -1 for nodes hosted elsewhere). Slots are written
  // by whichever reactor owns the node and read on the primary.
  std::unique_ptr<query::SnapshotTable> snapshots_;
  std::vector<std::int32_t> snap_index_;

  std::deque<Message> local_queue_;
  // Per-tree-edge traffic totals: protocol messages routed over each
  // parent edge (local or cross-daemon — the optimizer wants the full
  // picture), indexed by the edge's child endpoint. Written relaxed from
  // any reactor, harvested by the driver's kTrafficReq at quiescence.
  // Deliberately not durable: traffic is a statistic, not protocol state;
  // a restart simply restarts the measurement window.
  std::unique_ptr<std::atomic<std::uint64_t>[]> edge_traffic_;
  // Quiescence counters. Atomic because worker reactors send (RouteSend)
  // and deliver concurrently with the primary; every queued or in-ring
  // message is counted in sent_ but not yet in received_, so
  // sent_ == received_ still means nothing is in flight. Consistent
  // multi-counter reads happen under the pause barrier.
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> received_{0};
  // Per-kind send counters (the Figure 2 cost categories), atomic for the
  // same reason; CountsNow() materializes a MessageCounts.
  std::atomic<std::int64_t> c_probes_{0};
  std::atomic<std::int64_t> c_responses_{0};
  std::atomic<std::int64_t> c_updates_{0};
  std::atomic<std::int64_t> c_releases_{0};
  MessageCounts CountsNow() const;
  void SetCounts(const MessageCounts& c);

  // Worker reactors (empty when Options::reactors <= 1). workers_[i] is
  // reactor i + 1; node_reactor_[u] is the owning reactor of hosted node
  // u, -1 for nodes hosted elsewhere.
  std::vector<std::unique_ptr<Reactor>> workers_;
  std::vector<int> node_reactor_;
  std::atomic<bool> workers_stop_{false};
  std::atomic<bool> pause_requested_{false};
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;   // workers -> primary: "I parked"
  std::condition_variable resume_cv_;  // primary -> workers: "go"
  int paused_workers_ = 0;  // guarded by pause_mu_
  int pause_depth_ = 0;     // primary thread only (nesting)
  bool workers_running_ = false;

  std::unique_ptr<DurableState> restore_;  // staged by RestoreDurable()

  // Durability bookkeeping (daemon thread only, except the atomics).
  bool dirty_ = false;  // exported state changed since the last snapshot
  std::uint64_t frames_since_snapshot_ = 0;
  std::atomic<std::uint64_t> replay_log_hwm_{0};
  std::atomic<std::uint64_t> snapshots_written_{0};

  // Observability (null/empty unless Options enabled metrics). The
  // registry owns every metric object; the bundles below are stable
  // pointers into it, shared by all hosted nodes and all connections.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  obs::ProtocolMetrics proto_metrics_;
  obs::TransportMetrics transport_metrics_;
  obs::QueryMetrics query_metrics_;
  // Per-peer-edge counters (satellite of the placement work): messages
  // and encoded bytes routed to each peer daemon, labeled
  // {daemon, peer}. Indexed by peer daemon id; registered lazily.
  std::vector<obs::Counter*> peer_msgs_;
  std::vector<obs::Counter*> peer_bytes_;
  obs::Gauge* g_local_queue_ = nullptr;
  obs::Gauge* g_replay_log_ = nullptr;
  obs::Gauge* g_replay_log_hwm_ = nullptr;
  obs::Counter* c_snapshots_ = nullptr;
  obs::Histogram* h_frame_ms_ = nullptr;
  TcpListener metrics_listener_;
  std::vector<MetricsConn> metrics_conns_;

  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int> sever_peer_{-1};
  bool peers_ready_ = false;  // latched result of PeersReady()
  bool shutdown_ = false;
  std::string error_;
};

}  // namespace treeagg

#endif  // TREEAGG_NET_DAEMON_H_
