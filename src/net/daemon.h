// NodeDaemon: one process (or thread) of the networked backend, hosting
// one-or-more tree nodes.
//
// The daemon runs the UNMODIFIED Figure 1/6 mechanism and policy objects
// from src/core: each hosted node is a LeaseNode whose Transport routes by
// the cluster's node -> daemon map — messages between two nodes of the
// same daemon go through an in-memory FIFO queue, messages crossing a
// daemon boundary are encoded as treeagg-wire-v1 frames over TCP. Channel
// semantics therefore match the paper's model end to end: reliable FIFO
// per directed edge (the local queue is FIFO; TCP is FIFO; every edge is
// carried by exactly one of them).
//
// The daemon is single-threaded: a poll() loop over the listener, the
// driver connection, and the peer connections. Each inbound frame is
// handled to completion — including draining every intra-daemon message it
// triggers — before the next frame is read, so a status snapshot taken
// between frames observes no half-processed work.
//
// Quiescence accounting: `sent` counts every protocol message emitted by a
// hosted node (local or remote), `received` counts every delivery to a
// hosted node. Summed across daemons, sent == received with all local
// queues empty means no protocol message is in flight; the driver confirms
// with two identical snapshots (the counters are monotone).
//
// Connection bring-up: the daemon with the smaller id initiates each peer
// link (ConnectWithBackoff tolerates daemons starting in any order); the
// accepting side learns the initiator's identity from its kPeerHello. The
// driver connection is recognized by kDriverHello.
#ifndef TREEAGG_NET_DAEMON_H_
#define TREEAGG_NET_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/lease_node.h"
#include "net/cluster.h"
#include "net/transport.h"
#include "net/wire.h"
#include "sim/trace.h"
#include "tree/topology.h"

namespace treeagg {

class NodeDaemon {
 public:
  struct Options {
    TransportOptions transport;
  };

  NodeDaemon(int daemon_id, ClusterConfig config, Options options = {});
  ~NodeDaemon();

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  // Creates the listening socket on this daemon's configured address.
  // Throws std::runtime_error on failure. Must precede Run().
  void Bind();

  // The actually-bound port; resolves a configured port 0 to the OS's
  // ephemeral choice. Valid after Bind().
  std::uint16_t BoundPort() const;

  // Overwrites the peer address table with resolved ports (in-process
  // clusters bind every daemon with port 0 first, then distribute the
  // resolved ports before any Run() starts).
  void SetResolvedPorts(const std::vector<std::uint16_t>& ports);

  // Serves until a kShutdown frame, driver disconnect, or RequestStop().
  // Never throws; a fatal problem is reported through error().
  void Run();

  // Thread-safe: wakes the poll loop and makes Run() return. Used by
  // in-process clusters on abnormal teardown.
  void RequestStop();

  // Empty after a clean Run(); otherwise the reason it aborted.
  const std::string& error() const { return error_; }

 private:
  class NetTransport final : public Transport {
   public:
    explicit NetTransport(NodeDaemon* daemon) : daemon_(daemon) {}
    void Send(Message m) override;

   private:
    NodeDaemon* daemon_;
  };

  // A connection whose role is not yet known (no hello frame seen).
  struct PendingConn {
    std::unique_ptr<FrameConn> conn;
  };

  void BuildNodes();
  void ConnectPeers();
  bool HostsNode(NodeId u) const {
    return config_.node_daemon[static_cast<std::size_t>(u)] == daemon_id_;
  }
  LeaseNode& NodeRef(NodeId u) { return *nodes_[static_cast<std::size_t>(u)]; }

  // True once every peer link this daemon's tree edges need is open.
  // Until then no inbound frame is handled (only hellos are classified):
  // an inject or forwarded protocol message processed earlier could need
  // to route onto a connection that does not exist yet. Deferred bytes
  // wait in the kernel socket buffer (poll is level-triggered), except
  // frames read behind a hello during classification, which wait in that
  // connection's FrameReader until DrainParkedFrames().
  bool PeersReady() const;
  void DrainParkedFrames();

  void RouteSend(Message m);        // NetTransport::Send body
  void DrainLocal();                // deliver the intra-daemon queue
  void OnCombineDone(NodeId node, CombineToken token, Real value);
  void HandleFrame(WireFrame frame);
  void HandleDriverEof();
  bool DrainConn(FrameConn* conn);  // read + decode; false on close/error
  void FlushAll();
  void Fail(std::string why);
  std::unique_ptr<FrameConn> TakePending(FrameConn* conn);
  void ErasePending(FrameConn* conn);

  const int daemon_id_;
  ClusterConfig config_;
  Options options_;
  std::unique_ptr<Tree> tree_;
  NetTransport transport_;
  std::vector<std::unique_ptr<LeaseNode>> nodes_;  // by NodeId; null if remote
  std::vector<int> peer_ids_;  // daemons sharing at least one tree edge

  TcpListener listener_;
  std::vector<std::unique_ptr<FrameConn>> peers_;  // by daemon id; may be null
  std::unique_ptr<FrameConn> driver_;
  std::vector<PendingConn> pending_;

  std::deque<Message> local_queue_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  MessageCounts counts_;

  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_requested_{false};
  bool peers_ready_ = false;  // latched result of PeersReady()
  bool shutdown_ = false;
  std::string error_;
};

}  // namespace treeagg

#endif  // TREEAGG_NET_DAEMON_H_
