#include "net/cluster.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace treeagg {

std::vector<NodeId> DfsPreorder(const std::vector<NodeId>& tree_parent) {
  const NodeId n = static_cast<NodeId>(tree_parent.size());
  if (n <= 0) throw std::invalid_argument("DfsPreorder: empty tree");
  // CSR child lists via counting sort: tree_parent[u] < u keeps this O(n)
  // with no per-node vector allocations (matters at 10^6 nodes).
  std::vector<NodeId> child_count(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 1; u < n; ++u) {
    ++child_count[static_cast<std::size_t>(tree_parent[u]) + 1];
  }
  for (NodeId u = 0; u < n; ++u) {
    child_count[static_cast<std::size_t>(u) + 1] +=
        child_count[static_cast<std::size_t>(u)];
  }
  std::vector<NodeId> children(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  std::vector<NodeId> fill(child_count.begin(), child_count.end() - 1);
  for (NodeId u = 1; u < n; ++u) {  // ascending u => children sorted
    children[static_cast<std::size_t>(
        fill[static_cast<std::size_t>(tree_parent[u])]++)] = u;
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<NodeId> stack = {0};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    const NodeId begin = child_count[static_cast<std::size_t>(u)];
    const NodeId end = child_count[static_cast<std::size_t>(u) + 1];
    for (NodeId i = end; i > begin; --i) {  // reversed: pop ascending
      stack.push_back(children[static_cast<std::size_t>(i - 1)]);
    }
  }
  return order;
}

std::vector<int> AssignNodes(const std::vector<NodeId>& tree_parent,
                             int daemons, const std::string& placement) {
  const NodeId n = static_cast<NodeId>(tree_parent.size());
  if (placement != "subtree") return AssignNodes(n, daemons, placement);
  if (n <= 0) throw std::invalid_argument("AssignNodes: empty tree");
  if (daemons <= 0) throw std::invalid_argument("AssignNodes: no daemons");
  const std::vector<NodeId> order = DfsPreorder(tree_parent);
  std::vector<int> assignment(static_cast<std::size_t>(n));
  const NodeId base = n / daemons;
  const NodeId extra = n % daemons;
  NodeId next = 0;
  for (int d = 0; d < daemons; ++d) {
    const NodeId take = base + (d < extra ? 1 : 0);
    for (NodeId i = 0; i < take; ++i) {
      assignment[static_cast<std::size_t>(order[static_cast<std::size_t>(
          next++)])] = d;
    }
  }
  return assignment;
}

std::vector<int> AssignNodes(NodeId n, int daemons,
                             const std::string& placement) {
  if (n <= 0) throw std::invalid_argument("AssignNodes: empty tree");
  if (daemons <= 0) throw std::invalid_argument("AssignNodes: no daemons");
  if (placement == "subtree") {
    throw std::invalid_argument(
        "AssignNodes: 'subtree' placement needs the parent vector (use the "
        "tree-aware overload)");
  }
  std::vector<int> assignment(static_cast<std::size_t>(n));
  if (placement == "block") {
    // Contiguous ranges, remainder spread over the first daemons.
    const NodeId base = n / daemons;
    const NodeId extra = n % daemons;
    NodeId next = 0;
    for (int d = 0; d < daemons; ++d) {
      const NodeId take = base + (d < extra ? 1 : 0);
      for (NodeId i = 0; i < take; ++i) {
        assignment[static_cast<std::size_t>(next++)] = d;
      }
    }
  } else if (placement == "rr") {
    for (NodeId u = 0; u < n; ++u) {
      assignment[static_cast<std::size_t>(u)] = static_cast<int>(u % daemons);
    }
  } else {
    throw std::invalid_argument("AssignNodes: unknown placement '" +
                                placement + "' (want block, rr, or subtree)");
  }
  return assignment;
}

void ClusterConfig::Validate() const {
  if (daemons.empty()) {
    throw std::invalid_argument("cluster config: no daemons");
  }
  if (tree_parent.empty()) {
    throw std::invalid_argument("cluster config: no tree");
  }
  for (NodeId u = 1; u < NumNodes(); ++u) {
    const NodeId p = tree_parent[static_cast<std::size_t>(u)];
    if (p < 0 || p >= u) {
      throw std::invalid_argument(
          "cluster config: parent[" + std::to_string(u) + "] = " +
          std::to_string(p) + " is not in [0, " + std::to_string(u) + ")");
    }
  }
  if (node_daemon.size() != tree_parent.size()) {
    throw std::invalid_argument(
        "cluster config: assignment covers " +
        std::to_string(node_daemon.size()) + " nodes, tree has " +
        std::to_string(tree_parent.size()));
  }
  for (std::size_t u = 0; u < node_daemon.size(); ++u) {
    if (node_daemon[u] < 0 || node_daemon[u] >= NumDaemons()) {
      throw std::invalid_argument("cluster config: node " + std::to_string(u) +
                                  " assigned to unknown daemon " +
                                  std::to_string(node_daemon[u]));
    }
  }
}

ClusterConfig ParseClusterConfig(std::istream& in) {
  ClusterConfig config;
  std::string placement;
  std::vector<std::pair<NodeId, int>> assigns;
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("cluster config line " +
                                std::to_string(lineno) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line
    if (!saw_header) {
      if (word != "treeagg-cluster-v1") {
        fail("expected header treeagg-cluster-v1, got '" + word + "'");
      }
      saw_header = true;
      continue;
    }
    if (word == "tree") {
      NodeId p;
      while (ls >> p) config.tree_parent.push_back(p);
      if (config.tree_parent.empty()) fail("tree directive with no nodes");
    } else if (word == "policy") {
      if (!(ls >> config.policy)) fail("policy directive with no value");
      std::string rest;
      if (ls >> rest) config.policy += rest;  // tolerate "lease(1, 3)"
    } else if (word == "op") {
      if (!(ls >> config.op)) fail("op directive with no value");
    } else if (word == "ghost") {
      int v;
      if (!(ls >> v)) fail("ghost directive with no value");
      config.ghost_logging = v != 0;
    } else if (word == "daemon") {
      int id;
      ClusterConfig::DaemonAddr addr;
      int port;
      if (!(ls >> id >> addr.host >> port)) {
        fail("daemon directive wants: daemon <id> <host> <port>");
      }
      if (port < 0 || port > 65535) fail("port out of range");
      addr.port = static_cast<std::uint16_t>(port);
      if (id != static_cast<int>(config.daemons.size())) {
        fail("daemon ids must appear in order 0, 1, ...");
      }
      config.daemons.push_back(std::move(addr));
    } else if (word == "place") {
      if (!(ls >> placement)) fail("place directive with no value");
    } else if (word == "assign") {
      NodeId node;
      int daemon;
      if (!(ls >> node >> daemon)) {
        fail("assign directive wants: assign <node> <daemon>");
      }
      assigns.emplace_back(node, daemon);
    } else {
      fail("unknown directive '" + word + "'");
    }
  }
  if (!saw_header) {
    throw std::invalid_argument("cluster config: missing treeagg-cluster-v1 header");
  }
  if (!assigns.empty() && !placement.empty()) {
    throw std::invalid_argument(
        "cluster config: 'place' and explicit 'assign' lines are exclusive");
  }
  if (!assigns.empty()) {
    config.node_daemon.assign(config.tree_parent.size(), -1);
    for (const auto& [node, daemon] : assigns) {
      if (node < 0 || node >= config.NumNodes()) {
        throw std::invalid_argument("cluster config: assign names node " +
                                    std::to_string(node) +
                                    " outside the tree");
      }
      if (daemon < 0) {
        throw std::invalid_argument("cluster config: assign gives node " +
                                    std::to_string(node) +
                                    " a negative daemon id");
      }
      if (config.node_daemon[static_cast<std::size_t>(node)] != -1) {
        throw std::invalid_argument(
            "cluster config: node " + std::to_string(node) +
            " assigned twice (to daemon " +
            std::to_string(config.node_daemon[static_cast<std::size_t>(node)]) +
            " and to daemon " + std::to_string(daemon) + ")");
      }
      config.node_daemon[static_cast<std::size_t>(node)] = daemon;
    }
    for (std::size_t u = 0; u < config.node_daemon.size(); ++u) {
      if (config.node_daemon[u] < 0) {
        throw std::invalid_argument("cluster config: node " +
                                    std::to_string(u) + " never assigned");
      }
    }
  } else {
    config.node_daemon =
        AssignNodes(config.tree_parent, config.NumDaemons(),
                    placement.empty() ? "block" : placement);
  }
  config.Validate();
  return config;
}

void WriteClusterConfig(std::ostream& out, const ClusterConfig& config) {
  out << "treeagg-cluster-v1\n";
  out << "tree";
  for (const NodeId p : config.tree_parent) out << ' ' << p;
  out << '\n';
  out << "policy " << config.policy << '\n';
  out << "op " << config.op << '\n';
  out << "ghost " << (config.ghost_logging ? 1 : 0) << '\n';
  for (std::size_t d = 0; d < config.daemons.size(); ++d) {
    out << "daemon " << d << ' ' << config.daemons[d].host << ' '
        << config.daemons[d].port << '\n';
  }
  for (std::size_t u = 0; u < config.node_daemon.size(); ++u) {
    out << "assign " << u << ' ' << config.node_daemon[u] << '\n';
  }
}

}  // namespace treeagg
