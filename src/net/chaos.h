// Chaos harness for the networked backend: a FaultSchedule driven against
// a LocalCluster.
//
// A real TCP cluster has no simulated clock, so fault event times are read
// as REQUEST-INJECTION INDICES: an event active over [b, e) begins just
// before the b-th request of sigma is injected and ends just before the
// e-th (indices clamp to [0, sigma.size()], so windows reaching past the
// workload are applied right after the last injection). The same spec
// string therefore names the same experiment on both backends — ticks on
// the DES, injection indices here — which is what the cross-backend chaos
// equivalence test leans on.
//
// Fault mapping (convergence-safe subset only):
//   crash(u) — fail-stop of the daemon hosting u: LocalCluster::KillDaemon
//              at index b, RestartDaemon at index e. Requests addressed to
//              a down daemon are deferred and injected right after its
//              restart (the real client would retry exactly like this).
//   cut(u-v) — LocalCluster::SeverPeerLink on the daemons hosting u and v
//              at index b (no-op when co-located). The session layer heals
//              the link on its own, so the window end needs no action.
//   drop(P)  — every daemon's PeerFaultInjector armed over [b, e) with
//              corrupt probability P. On a TCP transport a silent drop
//              would just stall, so "drop" means detectable corruption:
//              the receiver tears the link down and session resume
//              retransmits from the log.
//   crashgroup(U1,...) — correlated fail-stop: every distinct daemon
//              hosting a listed node is killed at index b and restarted at
//              index e (one shared fault window).
//   sever(U->V) — asymmetric partition: outbound frames from U's daemon
//              to V's daemon park in the sender's held queue over [b, e)
//              (RequestPauseSend); the reverse direction and the TCP
//              connection stay live. No-op when co-located.
//   gray(U:D0..D1) — gray failure: U's daemon stays up but every outbound
//              peer frame is held for a seeded delay drawn from
//              [D0, D1] * tick_us while the window is open.
//   lat(U-V:D0..D1) — WAN/geo profile: frames between the two hosting
//              daemons (both directions) are held for a seeded
//              [D0, D1] * tick_us delay while the window is open. No-op
//              when co-located.
//   delay    — ignored (loopback TCP has real, uncontrollable delays;
//              gray/lat are the injected-latency faults here).
//   dup / reorder — rejected with std::invalid_argument: they violate the
//              channel assumption and exist only to validate the checkers
//              on the DES backend.
//
// Held frames never change the wire format — a frame is either on the
// wire unmodified or not yet sent — so old-dialect peers cannot observe
// any delay-profile behaviour in the bytes themselves.
//
// Fault windows are recorded in the DRIVER clock (the clock the history's
// initiated_at/completed_at use) and are conservative: each window opens
// at the clock of its begin action and every window closes at the clock
// observed after the post-workload quiescence wait, because recovery
// (reconnect backoff, session replay, re-injection) extends past the
// nominal event end. Final probes run after that, so they always count as
// outside every window.
#ifndef TREEAGG_NET_CHAOS_H_
#define TREEAGG_NET_CHAOS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "consistency/causal_checker.h"  // NodeGhostState
#include "consistency/history.h"
#include "fault/schedule.h"
#include "net/local_cluster.h"
#include "workload/request.h"

namespace treeagg {

struct ChaosNetOptions {
  // Cluster shape; `fault_injectors` is populated by the harness (one per
  // daemon, seeded from the schedule) and must be left empty.
  LocalCluster::Options cluster;
  // Probe one combine at every node after the network heals (the
  // ConvergenceChecker's ground-truth comparison). On by default.
  bool final_probes = true;
  // Microseconds per schedule delay tick: gray/lat windows of [D0, D1]
  // ticks inject [D0, D1] * tick_us of real per-frame latency.
  std::int64_t tick_us = 200;
};

struct ChaosNetResult {
  History history;
  std::vector<NodeGhostState> ghosts;
  MessageCounts counts;
  std::uint64_t total_messages = 0;
  // Ids of the post-heal per-node combines (empty if final_probes off).
  std::vector<ReqId> final_probe_ids;
  // Merged fault windows in driver-clock units (see header comment);
  // feed to ConvergenceOptions::fault_windows.
  std::vector<std::pair<std::int64_t, std::int64_t>> fault_windows;
  // Recovery statistics.
  std::size_t kills = 0;       // daemons crashed (and restarted)
  std::size_t severs = 0;      // peer links severed
  std::size_t paused = 0;      // asymmetric pause-send windows applied
  std::size_t deferred = 0;    // requests deferred past a crash window
  std::size_t reinjected = 0;  // requests re-sent after daemon restarts
  std::size_t corrupted = 0;   // frames damaged by the drop injectors
  std::size_t delayed = 0;     // frames priced with gray/WAN delay
  std::uint64_t frames_held = 0;  // frames that waited in a held queue
  // Largest replay-log length any peer session reached (across restarts).
  // With cumulative acks on, this stays bounded by the unacked window
  // instead of growing with the workload.
  std::uint64_t replay_log_hwm = 0;
};

// Runs sigma (pipelined) against a LocalCluster while driving `schedule`,
// waits for completion + quiescence after the schedule heals, then probes
// (optionally) and harvests. Throws std::runtime_error on daemon failure
// or wedged recovery, std::invalid_argument on dup/reorder events.
ChaosNetResult RunChaosNetWorkload(const std::vector<NodeId>& tree_parent,
                                   const RequestSequence& sigma,
                                   const FaultSchedule& schedule,
                                   const ChaosNetOptions& options);

}  // namespace treeagg

#endif  // TREEAGG_NET_CHAOS_H_
