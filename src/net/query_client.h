// QueryClient: a standalone client of the snapshot read tier.
//
// Where NetDriver multiplexes queries onto its existing driver
// connections, a QueryClient opens DEDICATED read connections: the first
// frame it sends on a fresh connection is a kQuery (not a hello), which is
// how a daemon classifies the connection as a read-tier client. Queries
// are synchronous request/response pairs; connections are opened lazily
// per daemon and reused across calls.
//
// A QueryClient never touches mechanism state — it can sit beside a
// running workload (the CLI's `query` subcommand, the read-throughput
// bench) without perturbing the Figure-2 message accounting.
#ifndef TREEAGG_NET_QUERY_CLIENT_H_
#define TREEAGG_NET_QUERY_CLIENT_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "net/cluster.h"
#include "net/transport.h"
#include "query/snapshot.h"

namespace treeagg {

class QueryClient {
 public:
  explicit QueryClient(ClusterConfig config);
  QueryClient(ClusterConfig config, TransportOptions transport);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  // Reads node's current snapshot from the daemon hosting it. Connects on
  // first use (with backoff); throws std::runtime_error on connection
  // failure, timeout, or a daemon that drops the read connection.
  query::QueryAnswer Query(NodeId node);

  const ClusterConfig& config() const { return config_; }

 private:
  FrameConn* ConnForNode(NodeId node);

  ClusterConfig config_;
  TransportOptions transport_;
  std::vector<std::unique_ptr<FrameConn>> conns_;  // by daemon id; lazy
  ReqId next_req_ = 1;
};

}  // namespace treeagg

#endif  // TREEAGG_NET_QUERY_CLIENT_H_
