// treeagg-wire-v6: the versioned binary wire format of the networked
// backend.
//
// A frame on the wire is a 4-byte little-endian length prefix followed by
// `length` bytes of body:
//
//   [u32 length] [u8 magic 0xA6] [u8 version] [u8 frame type] [payload]
//
// `length` counts the body (magic byte onward) and is bounded by
// kMaxFrameLen; a length outside [3, kMaxFrameLen] poisons the stream
// before any payload byte is read, so a corrupted prefix can never trigger
// a giant allocation. All integers are little-endian; Real travels as the
// IEEE-754 bit pattern of a double.
//
// Frame types cover the three conversations of the backend:
//   daemon <-> daemon : kPeerHello, kProtocol (a core::Message, including
//                       the ghost-log piggyback of Figure 6), kPeerAck
//                       (cumulative replay-log GC, v3), kBatch (count +
//                       concatenated messages, v4 frame coalescing)
//   driver  -> daemon : kDriverHello, kInjectWrite, kInjectCombine,
//                       kStatusReq, kHarvestReq, kShutdown
//   daemon  -> driver : kWriteDone, kCombineDone, kStatusResp, kHarvestResp
//   client <-> daemon : kQuery / kQueryResp (v5) — the snapshot read tier;
//                       any connection may open with a kQuery instead of a
//                       hello and becomes a query client
//   driver <-> daemon : kTrafficReq/kTrafficResp (per-tree-edge message
//                       counts for the placement optimizer) and the v6
//                       node-migration conversation — kMigrateOut /
//                       kMigrateState / kMigrateIn / kMigrateCommit /
//                       kMigrateDone / kPlacementUpdate — which rides
//                       driver connections only, never peer sessions
//
// Decoding never throws and never crashes on malformed input: every error
// is reported as a DecodeStatus and poisons the FrameReader (a byte stream
// that framed garbage cannot be resynchronized safely).
#ifndef TREEAGG_NET_WIRE_H_
#define TREEAGG_NET_WIRE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/message.h"
#include "sim/trace.h"  // MessageCounts

namespace treeagg {

inline constexpr std::uint8_t kWireMagic = 0xA6;
// v2 added the resume count to kPeerHello (crash-restart session resume).
// v3 adds cumulative acks for replay-log GC: a durably-processed count
// piggybacked on kPeerHello and the periodic kPeerAck frame.
// v4 adds kBatch: one frame carrying a count and that many concatenated
// kProtocol message bodies, so a burst toward one peer costs one header
// and one syscall. Each endpoint still decodes every dialect down to
// kWireMinVersion, and encodes each peer session at
// min(kWireVersion, peer hello version) — a v2 peer sees no acks, a v3
// peer sees per-message kProtocol frames and never a kBatch.
// v5 adds the snapshot read tier: kQuery / kQueryResp client frames,
// answered from the seqlock snapshot table without touching mechanism
// state. Query frames never ride peer sessions, so a v2/v3/v4 peer never
// sees them; in a sub-v5 frame those type bytes are kBadType.
// v6 adds the placement subsystem's driver frames: kTrafficReq /
// kTrafficResp harvest the per-tree-edge message counters, and the
// kMigrateOut / kMigrateState / kMigrateIn / kMigrateCommit /
// kMigrateDone / kPlacementUpdate conversation moves a node's durable
// state between daemons at quiescence. All eight ride driver connections
// only, so per-session downgrade keeps v2–v5 peers from ever seeing a v6
// type byte; in a sub-v6 frame those bytes are kBadType.
inline constexpr std::uint8_t kWireVersion = 6;  // treeagg-wire-v6
inline constexpr std::uint8_t kWireMinVersion = 2;  // oldest accepted
// Upper bound on the frame body (magic byte onward). Harvest frames carry
// whole ghost logs, so the cap is generous; anything larger is rejected as
// a corrupted length prefix.
inline constexpr std::size_t kMaxFrameLen = 1u << 22;

enum class FrameType : std::uint8_t {
  kPeerHello = 0,      // daemon_id + resume count (session handshake)
  kDriverHello = 1,    // no payload; identifies the driver connection
  kProtocol = 2,       // a core::Message crossing a daemon boundary
  kInjectWrite = 3,    // req, node, arg
  kInjectCombine = 4,  // req, node
  kWriteDone = 5,      // req
  kCombineDone = 6,    // req, value, gather pairs, log_prefix
  kStatusReq = 7,      // probe token
  kStatusResp = 8,     // probe token + quiescence counters
  kHarvestReq = 9,     // no payload
  kHarvestResp = 10,   // ghost logs of hosted nodes + message counts
  kShutdown = 11,      // no payload
  kPeerAck = 12,       // cumulative durably-processed count (v3)
  kBatch = 13,         // count + concatenated protocol messages (v4)
  kQuery = 14,         // req, node (v5 snapshot read)
  kQueryResp = 15,     // req, node, epoch, value, log_prefix (v5)
  kTrafficReq = 16,    // req (v6 per-edge traffic harvest)
  kTrafficResp = 17,   // req + sparse (child-node, count) pairs (v6)
  kMigrateOut = 18,    // req, node: export a hosted node's state (v6)
  kMigrateState = 19,  // req, node, resume(=hosted), epoch, blob (v6)
  kMigrateIn = 20,     // req, node, epoch, blob: install on target (v6)
  kMigrateCommit = 21, // req, node, daemon_id(=new owner): drop source (v6)
  kMigrateDone = 22,   // req: ack of In/Commit/PlacementUpdate (v6)
  kPlacementUpdate = 23,  // req + (node, daemon) moves broadcast (v6)
};

const char* ToString(FrameType t);

// Quiescence counters of one daemon (see NetDriver::WaitQuiescent): a
// global state where every daemon reports sent == received twice in a row
// has no protocol message in flight (the counters are monotone).
struct StatusPayload {
  std::uint64_t probe = 0;     // echo of the request's token
  std::uint64_t sent = 0;      // protocol messages sent by hosted nodes
  std::uint64_t received = 0;  // protocol messages delivered to hosted nodes
  std::uint64_t queued = 0;    // intra-daemon messages awaiting delivery

  friend bool operator==(const StatusPayload&, const StatusPayload&) = default;
};

// Final ghost write-log of one hosted node (kHarvestResp).
struct NodeLogPayload {
  NodeId node = kInvalidNode;
  GhostLog log;

  friend bool operator==(const NodeLogPayload&, const NodeLogPayload&) =
      default;
};

struct HarvestPayload {
  std::vector<NodeLogPayload> logs;
  MessageCounts counts;  // send-side totals, mirroring MessageTrace

  friend bool operator==(const HarvestPayload&, const HarvestPayload&) =
      default;
};

// One decoded frame. Only the fields of the active `type` are meaningful;
// the rest keep their defaults (and encode to nothing).
struct WireFrame {
  FrameType type = FrameType::kShutdown;

  std::uint32_t daemon_id = 0;  // kPeerHello
  // kPeerHello: how many kProtocol frames from the receiving daemon this
  // sender has already processed. The receiver resumes the peer session by
  // replaying its send log from this position (exactly-once across
  // connection drops and crash-restarts).
  std::uint64_t resume = 0;
  // kPeerAck, and kPeerHello at v3: how many kProtocol frames from the
  // receiving daemon the sender has DURABLY processed — the receiver may
  // garbage-collect that prefix of its replay log. `ack_valid` is false
  // when the field was absent on the wire (a v2 hello): GC stays disabled
  // for that session.
  std::uint64_t ack = 0;
  bool ack_valid = false;

  Message msg;  // kProtocol

  // kBatch: the coalesced messages, in their original send order. The
  // replay log, acks, and quiescence counters all stay message-granular;
  // a batch is purely a wire encoding of consecutive kProtocol sends.
  std::vector<Message> batch;

  // Set by the decoder to the version byte the frame arrived with, so the
  // receiver can pin a peer session's dialect from its hello frame.
  std::uint8_t wire_version = kWireVersion;

  ReqId req = kNoRequest;      // kInject*, k*Done, kQuery*
  NodeId node = kInvalidNode;  // kInject*, kQuery*
  Real arg = 0;                // kInjectWrite

  Real value = 0;                                // kCombineDone, kQueryResp
  std::vector<std::pair<NodeId, ReqId>> gather;  // kCombineDone
  std::int64_t log_prefix = -1;                  // kCombineDone, kQueryResp

  // kQueryResp: publish count of the served snapshot (see query::QueryAnswer).
  // kMigrateState / kMigrateIn: snapshot epoch of the migrating node's
  // query slot, carried across so the target can seed its new slot and
  // keep per-connection epoch monotonicity intact.
  std::uint64_t epoch = 0;

  // kMigrateState / kMigrateIn: the migrating node's durable protocol
  // state, encoded with EncodeNodeStateBlob (net/durability.h). On
  // kMigrateState, `resume` doubles as the hosted flag (1 = state
  // attached, 0 = the addressee no longer hosts the node — an idempotent
  // retry after a completed move) and `daemon_id` is unused; on
  // kMigrateCommit, `daemon_id` names the new owner.
  std::vector<std::uint8_t> blob;

  // kPlacementUpdate: (node, new owner daemon) assignments. The driver
  // broadcasts the full map, so applying it is idempotent.
  std::vector<std::pair<NodeId, std::int32_t>> moves;

  // kTrafficResp: sparse per-tree-edge message counts, keyed by the
  // edge's child node id (parent[u] < u makes that unique).
  std::vector<std::pair<NodeId, std::uint64_t>> traffic;

  StatusPayload status;    // kStatusReq (probe only) / kStatusResp
  HarvestPayload harvest;  // kHarvestResp
};

// Deep structural equality, including the protocol message and the pointed-to
// ghost log (Message itself compares the wlog pointer, not its contents).
bool FramesEqual(const WireFrame& a, const WireFrame& b);

// Serializes `frame` (length prefix included) onto the end of `out`.
// `version` selects the encoded dialect (a session downgrades to v2 when
// the peer's hello spoke v2); it must be in [kWireMinVersion, kWireVersion].
void AppendFrame(std::vector<std::uint8_t>* out, const WireFrame& frame,
                 std::uint8_t version = kWireVersion);
std::vector<std::uint8_t> EncodeFrame(const WireFrame& frame,
                                      std::uint8_t version = kWireVersion);

// Appends the encoded body of one protocol message — the element codec
// shared by kProtocol payloads and kBatch elements — with no frame header.
// The per-edge coalescer encodes messages incrementally with this and
// wraps the accumulated bytes with AppendBatchFrame at flush time.
void AppendMessagePayload(std::vector<std::uint8_t>* out, const Message& m);

// Wraps `count` concatenated message payloads (`msgs`, `len` bytes, built
// by AppendMessagePayload) into one kBatch frame, length prefix included.
// `version` must be >= 4; only v4 sessions ever carry kBatch.
void AppendBatchFrame(std::vector<std::uint8_t>* out, std::uint32_t count,
                      const std::uint8_t* msgs, std::size_t len,
                      std::uint8_t version = kWireVersion);

enum class DecodeStatus {
  kOk = 0,
  kNeedMore,    // not an error: the frame is still in flight
  kBadLength,   // length prefix outside [3, kMaxFrameLen]
  kBadMagic,    // first body byte is not kWireMagic
  kBadVersion,  // unsupported wire version
  kBadType,     // frame type byte out of range
  kBadPayload,  // payload truncated, over-long, or internally inconsistent
};

const char* ToString(DecodeStatus s);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // bytes to drop from the stream when kOk
  WireFrame frame;
};

// Decodes the first frame of [data, data + len). Never throws; never reads
// past `len`.
DecodeResult DecodeFrame(const std::uint8_t* data, std::size_t len);

// Incremental decoder over a TCP byte stream: Feed() appends raw bytes,
// Next() yields complete frames. The first malformed frame poisons the
// reader (every later Next() repeats the error) — framing errors on a byte
// stream are not recoverable.
class FrameReader {
 public:
  void Feed(const std::uint8_t* data, std::size_t len);

  // kOk fills *frame and consumes it from the stream; kNeedMore means no
  // complete frame is buffered; anything else is a sticky stream error.
  DecodeStatus Next(WireFrame* frame);

  // Drops all buffered bytes and clears a sticky error (used when a
  // connection is re-established: a partial frame from the old connection
  // must not prefix the new byte stream).
  void Reset();

  std::size_t BufferedBytes() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  DecodeStatus error_ = DecodeStatus::kOk;
};

}  // namespace treeagg

#endif  // TREEAGG_NET_WIRE_H_
