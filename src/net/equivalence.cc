#include "net/equivalence.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "consistency/causal_checker.h"
#include "consistency/history.h"
#include "consistency/strict_checker.h"
#include "core/aggregate_op.h"
#include "core/extra_policies.h"
#include "core/mlap.h"
#include "net/local_cluster.h"
#include "runtime/actor_runtime.h"
#include "sim/system.h"
#include "tree/topology.h"

namespace treeagg {
namespace {

// Every spec run appends one Combine at node 0 so even write-only
// workloads have a comparable final aggregate. MLAP policies first apply
// the delay-and-batch transform (core/mlap.h) — once, identically, for
// every backend — so the three backends execute the same batched sequence
// through the same RWW mechanism and must stay bit-identical.
RequestSequence WithFinalCombine(const EquivalenceSpec& spec) {
  RequestSequence sigma = spec.sigma;
  if (IsMlapSpec(spec.policy)) {
    Tree tree(spec.tree_parent);
    sigma = BuildMlapPlan(tree, sigma, ParseMlapSpec(spec.policy)).batched;
  }
  sigma.push_back(Request::Combine(0));
  return sigma;
}

// Combine answers in injection order, taken from a completed history
// (request ids index records in injection order). The last record is the
// appended final combine.
void FillAnswers(const History& history, const AggregateOp& op, NodeId n,
                 const std::vector<NodeGhostState>& ghosts, Real tolerance,
                 BackendRun* run) {
  for (const RequestRecord& r : history.records()) {
    if (r.op == ReqType::kCombine) run->answers.push_back(r.retval);
  }
  run->final_value = run->answers.back();
  const CheckResult strict = CheckStrictConsistency(history, op, n, tolerance);
  const CheckResult causal =
      CheckCausalConsistency(history, ghosts, op, n, tolerance);
  run->strict_ok = strict.ok;
  run->causal_ok = causal.ok;
  if (!strict.ok) {
    run->message = "strict: " + strict.message;
  } else if (!causal.ok) {
    run->message = "causal: " + causal.message;
  }
}

}  // namespace

BackendRun RunSimBackend(const EquivalenceSpec& spec) {
  BackendRun run;
  run.backend = "sim";
  Tree tree(spec.tree_parent);
  AggregationSystem::Options options;
  options.op = &OpByName(spec.op);
  options.ghost_logging = true;
  AggregationSystem sys(tree, PolicyBySpec(spec.policy), options);
  sys.Execute(WithFinalCombine(spec));
  run.total_messages = sys.trace().totals().total();
  FillAnswers(sys.history(), sys.op(), tree.size(), sys.GhostStates(),
              spec.tolerance, &run);
  return run;
}

BackendRun RunRuntimeBackend(const EquivalenceSpec& spec) {
  BackendRun run;
  run.backend = "runtime";
  Tree tree(spec.tree_parent);
  ActorRuntime::Options options;
  options.op = &OpByName(spec.op);
  options.ghost_logging = true;
  ActorRuntime rt(tree, PolicyBySpec(spec.policy), options);
  rt.Start();
  // Sequential schedule: every request runs in a quiescent network.
  for (const Request& r : WithFinalCombine(spec)) {
    if (r.op == ReqType::kWrite) {
      rt.InjectWrite(r.node, r.arg);
    } else {
      rt.InjectCombine(r.node);
    }
    rt.WaitQuiescent();
  }
  rt.DrainAndStop();
  run.total_messages = rt.MessagesSent();
  FillAnswers(rt.history(), OpByName(spec.op), tree.size(), rt.GhostStates(),
              spec.tolerance, &run);
  return run;
}

BackendRun RunNetBackend(const EquivalenceSpec& spec) {
  BackendRun run;
  run.backend = "net";
  LocalCluster::Options options;
  options.daemons = spec.net_daemons;
  options.policy = spec.policy;
  options.op = spec.op;
  options.ghost_logging = true;
  options.placement = spec.placement;
  options.reactors = spec.net_reactors;
  options.transport.batch_bytes = spec.net_batch_bytes;
  options.transport.batch_flush_us = spec.net_batch_flush_us;
  EquivalenceSpec with_final = spec;
  with_final.sigma = WithFinalCombine(spec);
  NetRunResult result = RunNetWorkload(spec.tree_parent, with_final.sigma,
                                       options, /*sequential=*/true);
  run.total_messages = result.counts.total();
  FillAnswers(result.history, OpByName(spec.op),
              static_cast<NodeId>(spec.tree_parent.size()), result.ghosts,
              spec.tolerance, &run);
  return run;
}

EquivalenceReport CheckBackendEquivalence(const EquivalenceSpec& spec) {
  EquivalenceReport report;
  report.runs.push_back(RunSimBackend(spec));
  report.runs.push_back(RunRuntimeBackend(spec));
  report.runs.push_back(RunNetBackend(spec));
  const BackendRun& ref = report.runs.front();
  for (const BackendRun& run : report.runs) {
    if (!run.strict_ok || !run.causal_ok) {
      report.message = run.backend + " checker failure: " + run.message;
      return report;
    }
    if (run.answers.size() != ref.answers.size()) {
      report.message = run.backend + " answered " +
                       std::to_string(run.answers.size()) + " combines, " +
                       ref.backend + " answered " +
                       std::to_string(ref.answers.size());
      return report;
    }
    for (std::size_t i = 0; i < run.answers.size(); ++i) {
      if (std::fabs(run.answers[i] - ref.answers[i]) > spec.tolerance) {
        report.message = run.backend + " combine #" + std::to_string(i) +
                         " = " + std::to_string(run.answers[i]) + ", " +
                         ref.backend + " = " + std::to_string(ref.answers[i]);
        return report;
      }
    }
    if (std::fabs(run.final_value - ref.final_value) > spec.tolerance) {
      report.message = run.backend + " final aggregate " +
                       std::to_string(run.final_value) + " != " +
                       ref.backend + " " + std::to_string(ref.final_value);
      return report;
    }
  }
  report.ok = true;
  return report;
}

}  // namespace treeagg
