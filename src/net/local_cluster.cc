#include "net/local_cluster.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/aggregate_op.h"
#include "place/placement.h"

namespace treeagg {

LocalCluster::LocalCluster(const std::vector<NodeId>& tree_parent,
                           const Options& options) {
  config_.tree_parent = tree_parent;
  config_.policy = options.policy;
  config_.op = options.op;
  config_.ghost_logging = options.ghost_logging;
  config_.daemons.assign(static_cast<std::size_t>(options.daemons),
                         ClusterConfig::DaemonAddr{"127.0.0.1", 0});
  if (options.assignment.empty()) {
    config_.node_daemon =
        AssignNodes(config_.tree_parent, options.daemons, options.placement);
  } else {
    if (options.assignment.size() != tree_parent.size()) {
      throw std::invalid_argument(
          "LocalCluster: assignment size != tree size");
    }
    config_.node_daemon = options.assignment;
  }
  config_.Validate();

  daemon_options_.transport = options.transport;
  daemon_options_.reactors = options.reactors;
  daemon_options_.durability = options.durability;
  daemon_options_.metrics = options.metrics;
  daemon_options_.metrics_port = options.metrics_port;
  injectors_ = options.fault_injectors;
  durable_.resize(static_cast<std::size_t>(options.daemons));
  try {
    for (int d = 0; d < options.daemons; ++d) {
      daemons_.push_back(
          std::make_unique<NodeDaemon>(d, config_, DaemonOptionsFor(d)));
      daemons_.back()->Bind();
    }
    std::vector<std::uint16_t> ports;
    for (auto& daemon : daemons_) ports.push_back(daemon->BoundPort());
    for (std::size_t d = 0; d < daemons_.size(); ++d) {
      daemons_[d]->SetResolvedPorts(ports);
      config_.daemons[d].port = ports[d];
    }
    for (auto& daemon : daemons_) {
      threads_.emplace_back([raw = daemon.get()] { raw->Run(); });
    }
    NetDriver::Options driver_options;
    driver_options.transport = options.transport;
    driver_options.quiescence_deadline_ms = options.quiescence_deadline_ms;
    driver_ = std::make_unique<NetDriver>(config_, driver_options);
    driver_->Connect();
  } catch (...) {
    Stop();
    throw;
  }
}

NodeDaemon::Options LocalCluster::DaemonOptionsFor(int d) const {
  NodeDaemon::Options daemon_options = daemon_options_;
  const std::size_t idx = static_cast<std::size_t>(d);
  if (idx < injectors_.size()) {
    daemon_options.fault_injector = injectors_[idx];
  }
  if (!daemon_options_.durability.state_dir.empty()) {
    daemon_options.durability.state_dir =
        daemon_options_.durability.state_dir + "/daemon-" + std::to_string(d);
  }
  // A fixed metrics port cannot be shared by co-hosted daemons: spread them.
  if (daemon_options_.metrics_port > 0) {
    daemon_options.metrics_port = daemon_options_.metrics_port + d;
  }
  return daemon_options;
}

std::uint16_t LocalCluster::DaemonMetricsPort(int d) const {
  const std::size_t idx = static_cast<std::size_t>(d);
  if (idx >= daemons_.size() || daemons_[idx] == nullptr) return 0;
  return daemons_[idx]->MetricsPort();
}

void LocalCluster::KillDaemon(int d) {
  const std::size_t idx = static_cast<std::size_t>(d);
  driver_->MarkDaemonDown(d);
  daemons_[idx]->RequestStop();
  if (threads_[idx].joinable()) threads_[idx].join();
  replay_hwm_ = std::max(replay_hwm_, daemons_[idx]->ReplayLogHighWater());
  durable_[idx] = std::make_unique<NodeDaemon::DurableState>(
      daemons_[idx]->ExportDurable());
  // Destroying the daemon closes its listener so the restart can rebind
  // the same (already-resolved) port.
  daemons_[idx].reset();
}

std::size_t LocalCluster::RestartDaemon(int d, RestartMode mode) {
  const std::size_t idx = static_cast<std::size_t>(d);
  NodeDaemon::Options daemon_options = DaemonOptionsFor(d);
  auto daemon = std::make_unique<NodeDaemon>(d, config_, daemon_options);
  if (mode == RestartMode::kAmnesia) {
    // The daemon rejoins blank: forget the kill-time export and (disk
    // mode) the snapshot its Run() would otherwise rehydrate from.
    durable_[idx].reset();
    if (!daemon_options.durability.state_dir.empty()) {
      RemoveSnapshot(daemon_options.durability.state_dir);
    }
  } else if (!daemon_options.durability.state_dir.empty()) {
    // Disk mode: the daemon reloads its own snapshot inside Run() — the
    // same path a real process restart takes. The kill-time export is
    // redundant with (never newer than observable effects of) the disk
    // snapshot, so drop it.
    durable_[idx].reset();
  } else if (durable_[idx] != nullptr) {
    daemon->RestoreDurable(std::move(*durable_[idx]));
    durable_[idx].reset();
  }
  daemon->Bind();  // same resolved port: SO_REUSEADDR covers TIME_WAIT
  daemons_[idx] = std::move(daemon);
  threads_[idx] = std::thread([raw = daemons_[idx].get()] { raw->Run(); });
  driver_->ReconnectDaemon(d);
  // Frames that died with the old driver connection (injects never
  // processed, completions never delivered): re-send every incomplete
  // request hosted by the restarted daemon. Duplicates are resolved by
  // the daemon's idempotent write-log append and the driver's completion
  // dedup.
  return driver_->ReinjectIncomplete({d});
}

void LocalCluster::SeverPeerLink(int d1, int d2) {
  const std::size_t i1 = static_cast<std::size_t>(d1);
  if (i1 < daemons_.size() && daemons_[i1] != nullptr) {
    daemons_[i1]->RequestSeverPeer(d2);
  }
}

void LocalCluster::SetSendPaused(int from_d, int to_d, bool paused) {
  const std::size_t idx = static_cast<std::size_t>(from_d);
  if (idx < daemons_.size() && daemons_[idx] != nullptr) {
    daemons_[idx]->RequestPauseSend(to_d, paused);
  }
}

std::uint64_t LocalCluster::FramesHeldTotal() const {
  std::uint64_t total = 0;
  for (const auto& daemon : daemons_) {
    if (daemon) total += daemon->FramesHeld();
  }
  return total;
}

LocalCluster::~LocalCluster() { Stop(); }

void LocalCluster::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (driver_) driver_->Shutdown();
  for (auto& daemon : daemons_) {
    if (daemon) daemon->RequestStop();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t LocalCluster::ReplayLogHighWater() const {
  std::uint64_t hwm = replay_hwm_;
  for (const auto& daemon : daemons_) {
    if (daemon) hwm = std::max(hwm, daemon->ReplayLogHighWater());
  }
  return hwm;
}

std::uint64_t LocalCluster::SumDaemonCounters(const std::string& name) const {
  std::uint64_t sum = 0;
  for (const auto& daemon : daemons_) {
    if (daemon && daemon->metrics() != nullptr) {
      sum += daemon->metrics()->SumCounters(name);
    }
  }
  return sum;
}

std::vector<std::uint64_t> LocalCluster::HarvestTraffic() {
  return driver_->HarvestTraffic();
}

std::size_t LocalCluster::Rebalance(const std::vector<int>& plan) {
  const std::size_t moved = driver_->ApplyPlacement(plan);
  // Keep the cluster's own map in step: RestartDaemon builds replacement
  // daemons from config_, which must reflect where nodes live NOW.
  config_.node_daemon = driver_->config().node_daemon;
  return moved;
}

std::string LocalCluster::DaemonError() const {
  for (const auto& daemon : daemons_) {
    if (daemon && !daemon->error().empty()) {
      return daemon->error();
    }
  }
  return "";
}

NetRunResult RunNetWorkload(const std::vector<NodeId>& tree_parent,
                            const RequestSequence& sigma,
                            const LocalCluster::Options& options,
                            bool sequential, ProbeVia probe_via,
                            std::size_t replace_after) {
  LocalCluster cluster(tree_parent, options);
  NetDriver& driver = cluster.driver();
  NetRunResult result;
  std::int64_t query_serial = 0;
  const auto start = std::chrono::steady_clock::now();
  // Live re-placement: once `replace_after` requests are in, drain the
  // cluster, harvest the per-edge traffic observed so far, optimize a new
  // placement from it, and migrate — the rest of sigma runs on the new map.
  bool replaced = false;
  std::size_t injected = 0;
  const auto maybe_replace = [&] {
    if (replace_after == 0 || replaced || injected < replace_after) return;
    replaced = true;
    driver.WaitAllCompleted();
    driver.WaitQuiescent();
    const std::vector<std::uint64_t> traffic = cluster.HarvestTraffic();
    result.cross_weight_before = place::CrossWeight(
        tree_parent, traffic, cluster.config().node_daemon);
    const place::PlacementPlan plan =
        place::OptimizePlacement(tree_parent, traffic, options.daemons);
    result.cross_weight_after = plan.cross_weight;
    result.nodes_moved = cluster.Rebalance(plan.node_daemon);
  };
  // kSnapshot turns every combine of sigma into an off-ledger snapshot
  // read: it returns kNoRequest (there is nothing to wait for — QueryNode
  // is synchronous) and records the served answer for offline validation.
  const auto inject = [&](const Request& r) {
    if (r.op == ReqType::kWrite) return driver.InjectWrite(r.node, r.arg);
    if (probe_via == ProbeVia::kSnapshot) {
      result.queries.push_back(query::ServedQuery{
          r.node, driver.QueryNode(r.node), query_serial++});
      return kNoRequest;
    }
    return driver.InjectCombine(r.node);
  };
  if (sequential) {
    for (const Request& r : sigma) {
      const ReqId id = inject(r);
      ++injected;
      if (id != kNoRequest) {
        driver.WaitCompleted(id);
        driver.WaitQuiescent();
      }
      maybe_replace();
    }
  } else {
    for (const Request& r : sigma) {
      inject(r);
      ++injected;
      maybe_replace();
    }
    driver.WaitAllCompleted();
    driver.WaitQuiescent();
  }
  result.elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!sigma.empty() && result.elapsed_sec > 0) {
    result.requests_per_sec =
        static_cast<double>(sigma.size()) / result.elapsed_sec;
  }
  NetDriver::HarvestResult harvest = driver.Harvest();
  result.ghosts = std::move(harvest.ghosts);
  result.counts = harvest.counts;
  result.total_messages = driver.TotalMessages();
  result.traffic = cluster.HarvestTraffic();
  cluster.Stop();
  result.wire_messages =
      cluster.SumDaemonCounters("treeagg_transport_messages_sent_total");
  result.wire_frames =
      cluster.SumDaemonCounters("treeagg_transport_protocol_frames_sent_total");
  result.frames_sent =
      cluster.SumDaemonCounters("treeagg_transport_frames_sent_total");
  result.send_syscalls =
      cluster.SumDaemonCounters("treeagg_transport_send_syscalls_total");
  if (!cluster.DaemonError().empty()) {
    throw std::runtime_error("net backend daemon failed: " +
                             cluster.DaemonError());
  }
  result.history = driver.history();
  if (!result.queries.empty()) {
    result.query_check = query::ValidateQueryAnswers(
        result.history, result.ghosts, result.queries, OpByName(options.op));
  }
  return result;
}

}  // namespace treeagg
