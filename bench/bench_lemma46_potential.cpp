// Lemma 4.6, executed — the potential-function argument as a dynamic
// check.
//
// For a batch of projected request sequences (random mixes plus the
// Theorem 3 adversary), replays RWW's configuration against an optimal
// offline plan extracted from the DP, and checks the amortized inequality
//     Phi(to) - Phi(from) + cost_RWW <= (5/2) * cost_OPT
// at EVERY step, for both the paper's potential and the one found by the
// in-repo LP solver. The telescoped sums certify Theorem 1 per sequence.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "common/rng.h"
#include "lp/potential.h"
#include "offline/edge_dp.h"
#include "offline/projection.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Lemma 4.6 — per-step amortized verification of RWW vs the "
               "offline plan\n\n";

  // Certificates: the paper's, and our solver's.
  const std::vector<double> paper_cert = PaperLpSolution();
  const LpSolution sol = SolveLp(BuildCompetitiveLp(BuildJointTransitions()));
  if (!sol.optimal()) {
    std::cout << "LP failed to solve\n";
    return 1;
  }
  std::vector<double> solver_cert = sol.x;
  // The LP leaves Phi's absolute level free; normalize so Phi(0,0) = 0
  // (shifting every Phi by a constant preserves all difference
  // constraints). If the shift drives some Phi negative the certificate
  // cannot be normalized — fall back to the paper's.
  {
    const double base = solver_cert[0];
    bool shiftable = true;
    for (int i = 0; i < kNumLpVars - 1; ++i) {
      if (solver_cert[static_cast<std::size_t>(i)] - base < -1e-9) {
        shiftable = false;
      }
    }
    if (shiftable) {
      for (int i = 0; i < kNumLpVars - 1; ++i) {
        solver_cert[static_cast<std::size_t>(i)] =
            std::max(0.0, solver_cert[static_cast<std::size_t>(i)] - base);
      }
    } else {
      std::cout << "(solver certificate not normalizable; using paper's)\n";
      solver_cert = paper_cert;
    }
  }

  std::string error;
  bool ok = VerifyCertificate(paper_cert, &error);
  std::cout << "paper certificate valid on all transitions:  "
            << (ok ? "yes" : "NO (" + error + ")") << "\n";
  const bool solver_ok = VerifyCertificate(solver_cert, &error);
  std::cout << "solver certificate valid on all transitions: "
            << (solver_ok ? "yes" : "NO (" + error + ")") << "\n\n";
  ok &= solver_ok;

  TextTable table({"sequence", "len", "RWW", "OPT", "ratio", "paper cert",
                   "solver cert"});
  Rng rng(42);
  const auto test_sequence = [&](const std::string& name,
                                 const EdgeSequence& seq) {
    const OptimalPlan plan = OptimalEdgePlan(seq);
    std::int64_t rww = 0, opt = 0;
    std::string err1, err2;
    const bool pass1 = ReplayAmortized(seq, plan, paper_cert, &rww, &opt,
                                       &err1);
    const bool pass2 = ReplayAmortized(seq, plan, solver_cert, nullptr,
                                       nullptr, &err2);
    ok &= pass1 && pass2;
    const double ratio =
        opt > 0 ? static_cast<double>(rww) / static_cast<double>(opt) : 0.0;
    table.AddRow({name, std::to_string(seq.size()), std::to_string(rww),
                  std::to_string(opt), Fmt(ratio, 3),
                  pass1 ? "pass" : "FAIL: " + err1,
                  pass2 ? "pass" : "FAIL: " + err2});
  };

  // The adversary: R W W repeated.
  {
    EdgeSequence adv;
    for (int i = 0; i < 300; ++i) {
      adv.push_back(EdgeReq::kR);
      adv.push_back(EdgeReq::kW);
      adv.push_back(EdgeReq::kW);
    }
    test_sequence("ADV(1,2)", adv);
  }
  // Random mixes.
  for (const double write_fraction : {0.2, 0.5, 0.8}) {
    EdgeSequence seq;
    for (int i = 0; i < 1000; ++i) {
      seq.push_back(rng.NextBool(write_fraction) ? EdgeReq::kW : EdgeReq::kR);
    }
    test_sequence("random w=" + Fmt(write_fraction, 1), seq);
  }
  // Degenerate shapes.
  test_sequence("all reads", EdgeSequence(500, EdgeReq::kR));
  test_sequence("all writes", EdgeSequence(500, EdgeReq::kW));

  std::cout << table.ToString();
  std::cout << (ok ? "\nAmortized inequality held at every step of every "
                     "sequence (Lemma 4.6).\n"
                   : "\nAMORTIZED ARGUMENT VIOLATED!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
