// E8 — Section 1 motivation: static aggregation strategies are workload
// brittle; the adaptive lease-based RWW is never far from the best.
//
// Reproduces the paper's qualitative claims:
//   * push-all (Astrolabe-like) wins on read-dominated workloads but
//     consumes high bandwidth on write-dominated ones;
//   * pull-all (MDS-2-like) wins on write-dominated workloads but pays on
//     every read;
//   * RWW tracks the better of the two across the whole mix axis (within
//     its 5/2 guarantee of the offline optimum).
#include <iostream>
#include <limits>

#include "analysis/table.h"
#include "core/policies.h"
#include "offline/edge_dp.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Static strategies vs RWW across the read/write mix axis\n"
               "(messages per request; tree = 64-node binary, 4000 "
               "requests)\n\n";
  Tree tree = MakeKary(64, 2);
  TextTable table({"write frac", "push-all", "pull-all", "RWW", "OPT bound",
                   "RWW/best-static", "RWW/OPT"});
  bool ok = true;
  for (const double wf : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    MixedWorkloadConfig config;
    config.length = 4000;
    config.write_fraction = wf;
    Rng rng(17);
    const RequestSequence sigma = MakeMixed(tree, config, rng);
    const auto run = [&](const PolicyFactory& f) {
      AggregationSystem sys(tree, f);
      sys.Execute(sigma);
      return sys.trace().TotalMessages();
    };
    const std::int64_t push = run(PushAllFactory());
    const std::int64_t pull = run(PullAllFactory());
    const std::int64_t rww = run(RwwFactory());
    const std::int64_t opt = OptimalLeaseBasedLowerBound(sigma, tree);
    const double per = static_cast<double>(sigma.size());
    const double vs_static =
        static_cast<double>(rww) / static_cast<double>(std::min(push, pull));
    const double vs_opt =
        opt > 0 ? static_cast<double>(rww) / static_cast<double>(opt)
                : 0.0;
    ok &= vs_opt <= 2.5 + 1e-12;
    table.AddRow({Fmt(wf, 2), Fmt(static_cast<double>(push) / per, 2),
                  Fmt(static_cast<double>(pull) / per, 2),
                  Fmt(static_cast<double>(rww) / per, 2),
                  Fmt(static_cast<double>(opt) / per, 2), Fmt(vs_static, 2),
                  Fmt(vs_opt, 2)});
  }
  std::cout << table.ToString();
  std::cout << "\nExpected shape: push-all explodes as writes dominate,\n"
               "pull-all explodes as reads dominate, RWW adapts and stays\n"
               "within 2.5x of the offline lease-based optimum.\n";
  std::cout << (ok ? "RWW bound held at every mix point.\n"
                   : "RWW exceeded its bound!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
