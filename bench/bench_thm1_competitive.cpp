// E5 — Theorem 1: RWW is 5/2-competitive against the optimal offline
// lease-based algorithm, for sequential executions.
//
// Sweeps tree shapes x sizes x workloads, runs the real protocol, and
// compares its measured total (and worst per-edge) message cost against
// the per-edge offline optimum computed by dynamic programming over the
// Figure 2 cost model. Every ratio must be <= 5/2 — with no additive slack
// (Lemma 4.6's potential starts and ends at Phi >= 0, Phi(0,0) = 0).
#include <iostream>
#include <vector>

#include "analysis/competitive.h"
#include "analysis/table.h"
#include "core/policies.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Theorem 1 — RWW vs optimal offline lease-based algorithm\n"
               "(paper bound: ratio <= 5/2 = 2.50 on every input)\n\n";
  TextTable table({"tree", "n", "workload", "RWW msgs", "OPT bound", "ratio",
                   "worst edge", "strict"});
  bool ok = true;
  double global_worst = 0;
  const std::uint64_t seed = 20260705;
  for (const std::string shape :
       {"path", "star", "kary2", "kary4", "random", "pref"}) {
    for (const NodeId n : {2, 8, 32, 96}) {
      for (const std::string wl :
           {"mixed25", "mixed50", "mixed75", "bursty", "hotspot"}) {
        Tree tree = MakeShape(shape, n, seed);
        const RequestSequence sigma = MakeWorkload(wl, tree, 1200, seed + n);
        const CompetitiveReport report =
            RunCompetitive(tree, RwwFactory(), "RWW", sigma);
        const double ratio = report.RatioVsLeaseOpt();
        const double worst = report.WorstEdgeRatio();
        global_worst = std::max({global_worst, ratio, worst});
        const bool row_ok = report.strict_ok && report.partition_ok &&
                            ratio <= 2.5 + 1e-12 && worst <= 2.5 + 1e-12;
        ok &= row_ok;
        table.AddRow({shape, std::to_string(n), wl,
                      std::to_string(report.online_total),
                      std::to_string(report.lease_opt_total), Fmt(ratio, 3),
                      Fmt(worst, 3), report.strict_ok ? "ok" : "FAIL"});
      }
    }
  }
  std::cout << table.ToString();
  std::cout << "\nworst observed ratio: " << Fmt(global_worst, 4)
            << "  (bound: 2.5)\n";
  std::cout << (ok ? "Theorem 1 holds on every sweep point.\n"
                   : "BOUND VIOLATED!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
