// E7 — Theorem 3: every (a, b)-algorithm has competitive ratio >= 5/2.
//
// For each (a, b), runs the real (a, b)-policy on Theorem 3's adversary
// ADV(a, b) (a combines at the reader, b writes at the writer, repeated on
// a two-node tree) and compares against the offline optimum. The measured
// asymptotic ratio must be >= 5/2 - o(1) for every (a, b), and exactly
// 5/2 for RWW = (1, 2) — showing that RWW's upper bound is the best
// achievable within the class.
//
// The analytic per-period prediction: the (a, b)-algorithm pays 2 per read
// while unleased (2a), then b - 1 updates plus an update + release on the
// b-th write: 2a + b + 1 per period. OPT pays min(2a, b, 3) per period
// (never lease / always lease / lease during the reads then voluntarily
// release). Minimizing (2a + b + 1) / min(2a, b, 3) over integer a, b >= 1
// gives 5/2, achieved uniquely at (a, b) = (1, 2) — RWW.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "core/policies.h"
#include "offline/edge_dp.h"
#include "offline/projection.h"
#include "sim/system.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Theorem 3 — lower bound 5/2 for every (a, b)-algorithm on "
               "its adversary ADV(a, b)\n\n";
  TextTable table({"(a,b)", "alg msgs", "OPT msgs", "measured ratio",
                   "predicted (2a+b+1)/min(2a,b,3)", ">= 5/2?"});
  bool ok = true;
  double best_ratio = 1e9;
  int best_a = 0, best_b = 0;
  const std::size_t periods = 2000;
  Tree tree({0, 0});
  for (int a = 1; a <= 4; ++a) {
    for (int b = 1; b <= 6; ++b) {
      const RequestSequence sigma = MakeAdversarial(1, 0, a, b, periods);
      AggregationSystem sys(tree, AbFactory(a, b));
      sys.Execute(sigma);
      const std::int64_t alg = sys.trace().TotalMessages();
      const std::int64_t opt =
          OptimalEdgeCost(ProjectSequence(sigma, tree, 0, 1));
      const double ratio =
          static_cast<double>(alg) / static_cast<double>(opt);
      const double predicted =
          static_cast<double>(2 * a + b + 1) /
          static_cast<double>(std::min({2 * a, b, 3}));
      const bool row_ok = ratio >= 2.5 - 0.01 &&
                          std::abs(ratio - predicted) < 0.02;
      ok &= row_ok;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_a = a;
        best_b = b;
      }
      table.AddRow({"(" + std::to_string(a) + "," + std::to_string(b) + ")",
                    std::to_string(alg), std::to_string(opt), Fmt(ratio, 3),
                    Fmt(predicted, 3), row_ok ? "yes" : "NO"});
    }
  }
  std::cout << table.ToString();
  std::cout << "\nbest (a,b): (" << best_a << "," << best_b
            << ") with ratio " << Fmt(best_ratio, 3)
            << "  — the minimum 5/2 is achieved exactly by RWW = (1,2)\n";
  ok &= (best_a == 1 && best_b == 2 && std::abs(best_ratio - 2.5) < 0.01);
  std::cout << (ok ? "Theorem 3 reproduced.\n" : "MISMATCH!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
