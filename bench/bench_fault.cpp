// E30 — fault-injection overhead and crash recovery on the networked
// backend.
//
// Section 1 prices frame corruption: a 32-node k-ary tree on 4 loopback
// daemons runs the same pipelined mixed50 workload with every peer link's
// fault injector armed at corruption rates 0% / 1% / 5% / 20%. Every
// corrupted frame is detected by the wire codec, tears the link down, and
// is retransmitted from the session log, so the cost shows up as wall
// time, never as a wrong answer: after quiescence a root probe must equal
// the fault-free ground truth at every rate.
//
// Section 2 prices a fail-stop crash: the chaos harness kills the daemon
// hosting node 10 mid-workload, restarts it from durable state, defers and
// re-injects the requests that targeted it, and the ConvergenceChecker
// signs off on the full history.
//
// Section 3 prices WAN/geo latency profiles: per-edge delay windows stay
// armed over the whole run (loopback TCP plus an injected regional RTT), a
// regional link is severed mid-workload and heals through session resume,
// and root-combine latency is reported as wall-clock p50/p95/p99.
//
// Exits non-zero if any run diverges. With --out FILE, also writes the
// machine-readable BENCH_fault.json committed at the repo root.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "core/aggregate_op.h"
#include "fault/convergence.h"
#include "fault/schedule.h"
#include "net/chaos.h"
#include "net/local_cluster.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

struct DropRow {
  double rate = 0;
  std::uint64_t corrupted = 0;
  double elapsed_sec = 0;
  double requests_per_sec = 0;
  double slowdown = 1.0;  // vs the 0% row
  bool converged = false;
};

// One full pipelined run with every injector armed at `rate` from first
// injection through quiescence (the chaos harness's index-space windows
// close too early in real time to price corruption; here the window is the
// whole run).
DropRow RunDropRate(const std::vector<NodeId>& parent,
                    const RequestSequence& sigma, NodeId num_nodes,
                    double rate) {
  LocalCluster::Options options;
  options.daemons = 4;
  options.placement = "rr";
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.corrupt_probability = rate;
    inj.seed = 1000 + static_cast<std::uint64_t>(d);
    options.fault_injectors.push_back(std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(parent, options);
  NetDriver& driver = cluster.driver();

  for (auto& inj : options.fault_injectors) inj->Arm();
  const auto start = std::chrono::steady_clock::now();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
  }
  driver.WaitAllCompleted();
  for (auto& inj : options.fault_injectors) inj->Disarm();
  driver.WaitQuiescent();
  const auto end = std::chrono::steady_clock::now();

  DropRow row;
  row.rate = rate;
  row.elapsed_sec = std::chrono::duration<double>(end - start).count();
  row.requests_per_sec =
      row.elapsed_sec > 0 ? static_cast<double>(sigma.size()) / row.elapsed_sec
                          : 0;
  for (const auto& inj : options.fault_injectors) {
    row.corrupted += inj->corrupted_count();
  }

  const ReqId probe = driver.InjectCombine(0);
  driver.WaitCompleted(probe);
  driver.WaitQuiescent();
  const Real truth = GroundTruth(driver.history(), SumOp(), num_nodes);
  const Real got = driver.history().record(probe).retval;
  row.converged = std::abs(got - truth) <= 1e-9 * (1 + std::abs(truth));
  cluster.Stop();
  if (!cluster.DaemonError().empty()) {
    std::cerr << "daemon error at rate " << rate << ": "
              << cluster.DaemonError() << "\n";
    row.converged = false;
  }
  return row;
}

struct CrashRow {
  std::size_t kills = 0;
  std::size_t deferred = 0;
  std::size_t reinjected = 0;
  double elapsed_sec = 0;
  bool converged = false;
};

CrashRow RunCrash(const std::vector<NodeId>& parent,
                  const RequestSequence& sigma, NodeId num_nodes) {
  FaultSchedule schedule;
  // Block placement over 32 nodes / 4 daemons hosts nodes 8..15 on daemon
  // 1; fail-stop it across the middle of the workload.
  schedule.WithSeed(41).Crash(10, 100, 250);
  ChaosNetOptions options;
  options.cluster.daemons = 4;
  options.cluster.placement = "block";

  const auto start = std::chrono::steady_clock::now();
  const ChaosNetResult result =
      RunChaosNetWorkload(parent, sigma, schedule, options);
  const auto end = std::chrono::steady_clock::now();

  ConvergenceOptions check;
  check.fault_windows = result.fault_windows;
  // Crash re-injection is at-least-once (see ConvergenceOptions).
  check.require_full_causal = result.reinjected == 0;
  const ConvergenceReport report =
      CheckConvergence(result.history, result.ghosts, SumOp(), num_nodes,
                       result.final_probe_ids, check);
  if (!report.ok) std::cerr << "crash run: " << report.message << "\n";

  CrashRow row;
  row.kills = result.kills;
  row.deferred = result.deferred;
  row.reinjected = result.reinjected;
  row.elapsed_sec = std::chrono::duration<double>(end - start).count();
  row.converged = report.ok;
  return row;
}

struct GeoRow {
  std::string profile;
  std::uint64_t delayed = 0;
  std::uint64_t frames_held = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double elapsed_sec = 0;
  bool converged = false;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

// One geo run: 3 "regions" (daemons, rr placement), per-edge latency
// profiles armed over the whole run, the far regional link severed
// mid-workload (the session layer heals it), then timed sequential root
// combines while the profiles are still armed.
GeoRow RunGeoProfile(const std::vector<NodeId>& parent,
                     const RequestSequence& sigma, NodeId num_nodes,
                     const std::string& profile, std::int64_t near_min_us,
                     std::int64_t near_max_us, std::int64_t far_min_us,
                     std::int64_t far_max_us) {
  LocalCluster::Options options;
  options.daemons = 3;
  options.placement = "rr";
  for (int d = 0; d < options.daemons; ++d) {
    PeerFaultInjector::Options inj;
    inj.seed = 2000 + static_cast<std::uint64_t>(d);
    if (near_max_us > 0) {
      // Region 0 <-> 1 is "near", 0 <-> 2 is "far"; 1 <-> 2 untouched.
      const DelayProfile near{near_min_us, near_max_us};
      const DelayProfile far{far_min_us, far_max_us};
      if (d == 0) {
        inj.lat[1] = near;
        if (far_max_us > 0) inj.lat[2] = far;
      } else if (d == 1) {
        inj.lat[0] = near;
      } else if (far_max_us > 0) {
        inj.lat[0] = far;
      }
    }
    options.fault_injectors.push_back(std::make_shared<PeerFaultInjector>(inj));
  }
  LocalCluster cluster(parent, options);
  NetDriver& driver = cluster.driver();
  for (int d = 0; d < options.daemons; ++d) {
    for (int peer = 0; peer < options.daemons; ++peer) {
      options.fault_injectors[static_cast<std::size_t>(d)]->ArmLat(peer);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::size_t injected = 0;
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
    } else {
      driver.InjectCombine(r.node);
    }
    // Regional partition mid-workload: sever the far link once; session
    // resume heals it while the latency profiles stay armed.
    if (++injected == sigma.size() / 2) cluster.SeverPeerLink(0, 2);
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();

  // Timed sequential root combines over the healed, still-slow topology.
  // Each probe is preceded by a write at a node hosted in another region:
  // the write pulls the lease away from the root, so the combine has to
  // cross the priced WAN edges instead of being served from root-cached
  // state.
  std::vector<double> lat_us;
  for (int i = 0; i < 40; ++i) {
    const NodeId remote = 1 + static_cast<NodeId>(i) % (num_nodes - 1);
    driver.WaitCompleted(driver.InjectWrite(remote, 1.0));
    const auto t0 = std::chrono::steady_clock::now();
    const ReqId id = driver.InjectCombine(0);
    driver.WaitCompleted(id);
    lat_us.push_back(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  }
  const auto end = std::chrono::steady_clock::now();
  std::sort(lat_us.begin(), lat_us.end());

  GeoRow row;
  row.profile = profile;
  row.p50_us = Percentile(lat_us, .5);
  row.p95_us = Percentile(lat_us, .95);
  row.p99_us = Percentile(lat_us, .99);
  row.elapsed_sec = std::chrono::duration<double>(end - start).count();
  for (const auto& inj : options.fault_injectors) {
    row.delayed += inj->delayed_count();
  }
  row.frames_held = cluster.FramesHeldTotal();
  for (auto& inj : options.fault_injectors) inj->DisarmAll();
  driver.WaitQuiescent();

  const ReqId probe = driver.InjectCombine(0);
  driver.WaitCompleted(probe);
  driver.WaitQuiescent();
  const Real truth = GroundTruth(driver.history(), SumOp(), num_nodes);
  const Real got = driver.history().record(probe).retval;
  row.converged = std::abs(got - truth) <= 1e-9 * (1 + std::abs(truth));
  cluster.Stop();
  if (!cluster.DaemonError().empty()) {
    std::cerr << "daemon error on profile " << profile << ": "
              << cluster.DaemonError() << "\n";
    row.converged = false;
  }
  return row;
}

int Run(const std::string& out_path) {
  const NodeId kNodes = 32;
  const std::size_t kRequests = 400;
  const Tree tree = MakeKary(kNodes, 2);
  const std::vector<NodeId> parent = ParentVector(tree);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, kRequests, 37);

  std::cout << "Fault-injection overhead — " << kNodes
            << "-node kary2 tree, 4 daemons, loopback TCP,\npipelined "
               "mixed50 workload of "
            << sigma.size() << " requests\n\n";

  TextTable table(
      {"corrupt", "frames hit", "seconds", "req/s", "slowdown", "converged"});
  std::vector<DropRow> rows;
  bool ok = true;
  for (const double rate : {0.0, 0.01, 0.05, 0.20}) {
    DropRow row = RunDropRate(parent, sigma, kNodes, rate);
    if (!rows.empty() && row.elapsed_sec > 0 && rows[0].elapsed_sec > 0) {
      row.slowdown = row.elapsed_sec / rows[0].elapsed_sec;
    }
    ok &= row.converged;
    table.AddRow({Fmt(100 * rate, 0) + "%", std::to_string(row.corrupted),
                  Fmt(row.elapsed_sec, 3), Fmt(row.requests_per_sec, 0),
                  Fmt(row.slowdown, 2) + "x", row.converged ? "ok" : "FAIL"});
    rows.push_back(row);
  }
  std::cout << table.ToString();

  std::cout << "\nCrash recovery — daemon hosting node 10 fail-stopped over "
               "injections [100, 250)\n\n";
  const CrashRow crash = RunCrash(parent, sigma, kNodes);
  ok &= crash.converged;
  TextTable crash_table(
      {"kills", "deferred", "reinjected", "seconds", "converged"});
  crash_table.AddRow({std::to_string(crash.kills),
                      std::to_string(crash.deferred),
                      std::to_string(crash.reinjected),
                      Fmt(crash.elapsed_sec, 3),
                      crash.converged ? "ok" : "FAIL"});
  std::cout << crash_table.ToString();

  std::cout << "\nWAN/geo latency profiles — 3 region-daemons, per-edge delay "
               "windows armed for the\nwhole run, far link severed "
               "mid-workload and healed by session resume;\nroot-combine "
               "latency from 40 sequential timed probes\n\n";
  TextTable geo_table({"profile", "delayed", "held", "p50 us", "p95 us",
                       "p99 us", "seconds", "converged"});
  std::vector<GeoRow> geo_rows;
  // "none" is the baseline: same topology and mid-run sever, no delay
  // profiles. geo2 prices one slow regional edge; geo3 adds a far region.
  geo_rows.push_back(RunGeoProfile(parent, sigma, kNodes, "none", 0, 0, 0, 0));
  geo_rows.push_back(
      RunGeoProfile(parent, sigma, kNodes, "geo2", 300, 500, 0, 0));
  geo_rows.push_back(
      RunGeoProfile(parent, sigma, kNodes, "geo3", 300, 500, 800, 1200));
  for (const GeoRow& g : geo_rows) {
    ok &= g.converged;
    geo_table.AddRow({g.profile, std::to_string(g.delayed),
                      std::to_string(g.frames_held), Fmt(g.p50_us, 0),
                      Fmt(g.p95_us, 0), Fmt(g.p99_us, 0),
                      Fmt(g.elapsed_sec, 3), g.converged ? "ok" : "FAIL"});
  }
  std::cout << geo_table.ToString();

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    out << "{\n  \"schema\": \"treeagg-bench-fault-v2\",\n";
    out << "  \"tree\": \"kary2\", \"nodes\": " << kNodes
        << ", \"daemons\": 4, \"workload\": \"mixed50\",\n";
    out << "  \"requests\": " << sigma.size()
        << ", \"transport\": \"loopback-tcp\",\n";
    out << "  \"drop_runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const DropRow& r = rows[i];
      out << "    {\"corrupt_rate\": " << r.rate
          << ", \"frames_corrupted\": " << r.corrupted
          << ", \"elapsed_sec\": " << r.elapsed_sec
          << ", \"requests_per_sec\": " << r.requests_per_sec
          << ", \"slowdown\": " << r.slowdown
          << ", \"converged\": " << (r.converged ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"crash_run\": {\"schedule\": \"seed=41;crash(10)@100..250\", "
           "\"kills\": "
        << crash.kills << ", \"deferred\": " << crash.deferred
        << ", \"reinjected\": " << crash.reinjected
        << ", \"elapsed_sec\": " << crash.elapsed_sec
        << ", \"converged\": " << (crash.converged ? "true" : "false")
        << "},\n";
    out << "  \"geo_runs\": [\n";
    for (std::size_t i = 0; i < geo_rows.size(); ++i) {
      const GeoRow& g = geo_rows[i];
      out << "    {\"profile\": \"" << g.profile
          << "\", \"delayed\": " << g.delayed
          << ", \"frames_held\": " << g.frames_held
          << ", \"p50_us\": " << g.p50_us << ", \"p95_us\": " << g.p95_us
          << ", \"p99_us\": " << g.p99_us
          << ", \"elapsed_sec\": " << g.elapsed_sec
          << ", \"converged\": " << (g.converged ? "true" : "false") << "}"
          << (i + 1 < geo_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    std::cout << "\nwrote " << out_path << "\n";
  }

  std::cout << (ok ? "\nPASS: every faulted run converged to the fault-free "
                     "ground truth\n"
                   : "\nFAIL: a faulted run diverged\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_fault [--out FILE]\n";
      return 2;
    }
  }
  return treeagg::Run(out_path);
}
