// Scaling series — messages per request vs tree size and shape.
//
// The paper's model charges one unit per edge crossing, so cost scales
// with the distance information must travel. This series quantifies the
// shape: path (diameter Θ(n)) is the worst case for pull-all, stars pay on
// hub congestion in real systems but are cheap in message count, and RWW's
// leases amortize repeated reads everywhere. Also verifies Theorem 1's
// bound at every size (the guarantee is size-independent).
#include <iostream>

#include "analysis/competitive.h"
#include "analysis/table.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Messages per request vs tree size (workload mixed50, 2000 "
               "requests)\n\n";
  TextTable table({"shape", "n", "diameter", "RWW", "push-all", "pull-all",
                   "OPT bound", "RWW/OPT"});
  bool ok = true;
  for (const std::string shape : {"path", "star", "kary2", "random"}) {
    for (const NodeId n : {8, 16, 32, 64, 128, 256}) {
      Tree tree = MakeShape(shape, n, 5);
      const RequestSequence sigma = MakeWorkload("mixed50", tree, 2000, 77);
      const double per = static_cast<double>(sigma.size());
      const auto run = [&](const PolicyFactory& f) {
        AggregationSystem sys(tree, f);
        sys.Execute(sigma);
        return static_cast<double>(sys.trace().TotalMessages()) / per;
      };
      const CompetitiveReport report =
          RunCompetitive(tree, RwwFactory(), "RWW", sigma);
      const double ratio = report.RatioVsLeaseOpt();
      ok &= ratio <= 2.5 + 1e-12;
      table.AddRow({shape, std::to_string(n),
                    std::to_string(tree.Diameter()),
                    Fmt(static_cast<double>(report.online_total) / per, 2),
                    Fmt(run(PushAllFactory()), 2),
                    Fmt(run(PullAllFactory()), 2),
                    Fmt(static_cast<double>(report.lease_opt_total) / per, 2),
                    Fmt(ratio, 3)});
    }
  }
  std::cout << table.ToString();
  std::cout << (ok ? "\nTheorem 1's bound is size- and shape-independent, "
                     "as proved.\n"
                   : "\nBOUND VIOLATED at some size!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
