// E6 — Theorem 2: RWW is 5-competitive against any *nice* (strictly
// consistent) offline algorithm, for sequential executions.
//
// The nice baseline is the epoch lower bound: every write -> combine
// transition in sigma(u, v) forces at least one message across (u, v) for
// any strictly consistent algorithm. The theorem's bound allows the usual
// additive constant (lease set-up before the first epoch); on long churny
// workloads the measured ratio must approach and stay below 5.
#include <iostream>

#include "analysis/competitive.h"
#include "analysis/table.h"
#include "core/policies.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Theorem 2 — RWW vs the epoch lower bound for nice "
               "algorithms\n(paper bound: ratio <= 5, up to lease set-up on "
               "short runs)\n\n";
  TextTable table({"tree", "n", "workload", "RWW msgs", "nice bound",
                   "ratio", "<= 5?"});
  bool ok = true;
  const std::uint64_t seed = 1234;
  for (const std::string shape : {"path", "star", "kary2", "random"}) {
    for (const NodeId n : {8, 32, 96}) {
      for (const std::string wl : {"mixed50", "bursty", "roundrobin"}) {
        Tree tree = MakeShape(shape, n, seed);
        const RequestSequence sigma = MakeWorkload(wl, tree, 3000, seed + n);
        const CompetitiveReport report =
            RunCompetitive(tree, RwwFactory(), "RWW", sigma);
        // Additive slack: at most 2 set-up messages per ordered pair over
        // the whole run (one probe + response before the first epoch).
        const std::int64_t additive = 2 * 2 * (tree.size() - 1);
        const bool row_ok =
            report.strict_ok &&
            report.online_total <= 5 * report.nice_bound_total + additive;
        ok &= row_ok;
        table.AddRow(
            {shape, std::to_string(n), wl,
             std::to_string(report.online_total),
             std::to_string(report.nice_bound_total),
             Fmt(report.RatioVsNiceBound(), 3), row_ok ? "yes" : "NO"});
      }
    }
  }
  std::cout << table.ToString();
  std::cout << (ok ? "\nTheorem 2 holds on every sweep point.\n"
                   : "\nBOUND VIOLATED!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
