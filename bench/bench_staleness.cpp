// E-extra — imprecision of zero-cost cached reads (Section 1 claims).
//
// MDS-2-style pull-all keeps no cached state, Astrolabe-style push-all
// keeps everything fresh at the price of write floods, and lease-based RWW
// keeps exactly the caches that recent reads justify. This bench measures
// how often a FREE read (ReadCached: the node's local view, no messages)
// would have returned the strictly consistent answer, across the mix axis.
//
// Expected shape: push-all ~100% fresh after warm-up; RWW tracks read
// intensity (its leases exist exactly where reads happen); pull-all is
// fresh only while nothing has been written anywhere.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "common/rng.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

struct Freshness {
  std::int64_t fresh = 0;
  std::int64_t total = 0;
  double Rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(fresh) / static_cast<double>(total);
  }
};

int Run() {
  std::cout << "Freshness of zero-cost cached reads, by policy and write "
               "fraction\n(32-node binary tree; probe = cached read at a "
               "random node before each request)\n\n";
  Tree tree = MakeKary(32, 2);
  TextTable table({"write frac", "policy", "fresh reads", "messages"});
  bool ok = true;
  for (const double wf : {0.1, 0.5, 0.9}) {
    double push_rate = 0, pull_rate = 0, rww_rate = 0;
    for (const NamedPolicy& policy :
         {NamedPolicy{"RWW", RwwFactory()},
          NamedPolicy{"push-all", PushAllFactory()},
          NamedPolicy{"pull-all", PullAllFactory()}}) {
      MixedWorkloadConfig config;
      config.length = 3000;
      config.write_fraction = wf;
      Rng rng(7);
      const RequestSequence sigma = MakeMixed(tree, config, rng);
      AggregationSystem sys(tree, policy.factory);
      // Warm up: one combine everywhere (push-all needs it; fair to all).
      for (NodeId u = 0; u < tree.size(); ++u) sys.Combine(u);
      std::vector<Real> truth(static_cast<std::size_t>(tree.size()), 0.0);
      Freshness freshness;
      Rng probe_rng(13);
      for (const Request& r : sigma) {
        // Probe a random node's cached view against ground truth.
        const NodeId probe = static_cast<NodeId>(
            probe_rng.NextBounded(static_cast<std::uint64_t>(tree.size())));
        Real expected = 0;
        for (const Real v : truth) expected += v;
        freshness.total += 1;
        // Tree-shaped vs linear fold orders differ in the last float bits;
        // compare with a relative tolerance.
        const Real scale = std::max<Real>(1.0, std::abs(expected));
        if (std::abs(sys.ReadCached(probe) - expected) <= 1e-9 * scale) {
          freshness.fresh += 1;
        }
        if (r.op == ReqType::kCombine) {
          sys.Combine(r.node);
        } else {
          sys.Write(r.node, r.arg);
          truth[static_cast<std::size_t>(r.node)] = r.arg;
        }
      }
      table.AddRow({Fmt(wf, 1), policy.name,
                    Fmt(100.0 * freshness.Rate(), 1) + "%",
                    std::to_string(sys.trace().TotalMessages())});
      if (policy.name == "push-all") push_rate = freshness.Rate();
      if (policy.name == "pull-all") pull_rate = freshness.Rate();
      if (policy.name == "RWW") rww_rate = freshness.Rate();
    }
    // The qualitative ordering the paper's motivation predicts.
    ok &= push_rate > 0.95;
    ok &= rww_rate > pull_rate;
  }
  std::cout << table.ToString();
  std::cout << (ok ? "\nFreshness ordering matches the Section 1 "
                     "motivation: push-all fresh,\nRWW adaptive, pull-all "
                     "stale whenever anything was written.\n"
                   : "\nUNEXPECTED freshness profile!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
