// E70 — snapshot query tier vs mechanism probes, loopback TCP.
//
// Prices the read path the snapshot tier adds: how fast can a client read
// a node's aggregate while a write stream is flowing, served (a) by the
// Figure 1 lease mechanism (InjectCombine: a probe wave to every neighbor
// without a taken lease, synchronous per read) versus (b) by the seqlock
// snapshot slots (kQuery/kQueryResp: one RTT to the hosting daemon, no
// mechanism message, no ledger movement). Three rows:
//
//   * mechanism/probes — the mixed50 combines served by the mechanism,
//     one synchronous probe per read, writes pipelined around them. The
//     full run is vetted by the Section 5 causal checker.
//   * snapshot/driver  — the same request sequence with every combine
//     served from the snapshot tier over the driver connection. Answers
//     are replayed through ValidateQueryAnswers against the harvested
//     ghost logs.
//   * snapshot/clients-K — K standalone QueryClient threads reading nodes
//     round-robin while the driver pumps a continuous write stream; each
//     connection's answers validated independently (per-connection
//     epoch/prefix linearizability).
//
// The headline is the speedup of the best snapshot row over the mechanism
// row; the bench exits non-zero if it falls under --min-speedup (default
// 10x, the tier's reason to exist) or any row fails validation. With
// --out FILE, writes the machine-readable treeagg-bench-query-v1 JSON
// committed as BENCH_query.json at the repo root (tools/check_bench.py
// gates it alongside the other baselines).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/table.h"
#include "consistency/causal_checker.h"
#include "core/aggregate_op.h"
#include "net/local_cluster.h"
#include "net/query_client.h"
#include "query/validate.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

struct BenchConfig {
  NodeId nodes = 63;
  int daemons = 4;
  std::string placement = "block";
  std::size_t requests = 2000;   // mixed50: ~half are reads
  int clients = 4;
  std::size_t reads_per_client = 2000;
  double min_speedup = 10.0;
  std::string out_path;
};

struct BenchRow {
  std::string name;  // stable series key for check_bench.py
  NodeId nodes = 0;
  int daemons = 0;
  std::uint64_t reads = 0;
  double elapsed_sec = 0;
  double serves_per_sec = 0;
  bool valid = false;
};

LocalCluster::Options ClusterOptions(const BenchConfig& cfg) {
  LocalCluster::Options options;
  options.daemons = cfg.daemons;
  options.placement = cfg.placement;
  options.ghost_logging = true;  // both validators replay against the logs
  return options;
}

// Rows 1 and 2: replay the same mixed50 sequence, serving each combine
// synchronously — via the mechanism or via the snapshot tier. Writes are
// pipelined either way, so the rows differ only in how a read is served.
BenchRow RunDriverRow(const std::string& name, ProbeVia via, const Tree& tree,
                      const RequestSequence& sigma, const BenchConfig& cfg) {
  LocalCluster cluster(ParentVector(tree), ClusterOptions(cfg));
  NetDriver& driver = cluster.driver();
  std::vector<query::ServedQuery> served;
  std::int64_t serial = 0;
  std::uint64_t reads = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const Request& r : sigma) {
    if (r.op == ReqType::kWrite) {
      driver.InjectWrite(r.node, r.arg);
      continue;
    }
    ++reads;
    if (via == ProbeVia::kMechanism) {
      driver.WaitCompleted(driver.InjectCombine(r.node));
    } else {
      served.push_back(
          query::ServedQuery{r.node, driver.QueryNode(r.node), serial++});
    }
  }
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  driver.Shutdown();
  cluster.Stop();

  CheckResult check;
  if (!cluster.DaemonError().empty()) {
    check = CheckResult::Fail("daemon failed: " + cluster.DaemonError());
  } else if (via == ProbeVia::kMechanism) {
    check = CheckCausalConsistency(driver.history(), harvest.ghosts,
                                   OpByName("sum"), tree.size());
  } else {
    check = query::ValidateQueryAnswers(driver.history(), harvest.ghosts,
                                        served, OpByName("sum"));
  }
  if (!check.ok) std::cout << name << " INVALID: " << check.message << "\n";

  BenchRow row;
  row.name = name;
  row.nodes = tree.size();
  row.daemons = cfg.daemons;
  row.reads = reads;
  row.elapsed_sec = elapsed;
  row.serves_per_sec = elapsed > 0 ? static_cast<double>(reads) / elapsed : 0;
  row.valid = check.ok;
  return row;
}

// Row 3: K standalone QueryClient threads read nodes round-robin while the
// driver keeps a write stream flowing for the whole window.
BenchRow RunClientsRow(const Tree& tree, const BenchConfig& cfg) {
  LocalCluster cluster(ParentVector(tree), ClusterOptions(cfg));
  NetDriver& driver = cluster.driver();
  // Warm every slot past its attach epoch so clients race real publishes.
  for (NodeId u = 0; u < tree.size(); ++u) {
    driver.InjectWrite(u, static_cast<Real>(u % 7));
  }
  driver.WaitAllCompleted();

  const int clients = std::max(1, cfg.clients);
  std::vector<std::vector<query::ServedQuery>> served(
      static_cast<std::size_t>(clients));
  std::vector<std::string> client_errors(static_cast<std::size_t>(clients));
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t]() {
      try {
        QueryClient client(cluster.config());
        auto& mine = served[static_cast<std::size_t>(t)];
        mine.reserve(cfg.reads_per_client);
        for (std::size_t i = 0; i < cfg.reads_per_client; ++i) {
          // Deterministic per-thread node walk, coprime stride per client.
          const NodeId node = static_cast<NodeId>(
              (static_cast<std::size_t>(t) * 31 + i * 7) %
              static_cast<std::size_t>(tree.size()));
          mine.push_back(query::ServedQuery{
              node, client.Query(node), static_cast<std::int64_t>(i)});
        }
      } catch (const std::exception& e) {
        client_errors[static_cast<std::size_t>(t)] = e.what();
      }
    });
  }
  // The concurrent write load: cycle writes over the tree until every
  // client finishes, throttled so the pipeline stays bounded.
  std::thread writer([&]() {
    std::uint64_t i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      driver.InjectWrite(static_cast<NodeId>(i % tree.size()),
                         static_cast<Real>(i % 11));
      if (++i % 128 == 0) driver.WaitAllCompleted();
    }
  });
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  done.store(true, std::memory_order_relaxed);
  writer.join();
  driver.WaitAllCompleted();
  driver.WaitQuiescent();
  const NetDriver::HarvestResult harvest = driver.Harvest();
  driver.Shutdown();
  cluster.Stop();

  CheckResult check = CheckResult::Ok();
  if (!cluster.DaemonError().empty()) {
    check = CheckResult::Fail("daemon failed: " + cluster.DaemonError());
  }
  for (int t = 0; t < clients && check.ok; ++t) {
    const std::string& err = client_errors[static_cast<std::size_t>(t)];
    if (!err.empty()) {
      check = CheckResult::Fail("client " + std::to_string(t) + ": " + err);
      break;
    }
    // Each connection is its own serial order; validate it independently.
    check = query::ValidateQueryAnswers(driver.history(), harvest.ghosts,
                                        served[static_cast<std::size_t>(t)],
                                        OpByName("sum"));
  }
  if (!check.ok) std::cout << "snapshot/clients INVALID: " << check.message
                           << "\n";

  BenchRow row;
  row.name = "snapshot/clients-" + std::to_string(clients);
  row.nodes = tree.size();
  row.daemons = cfg.daemons;
  row.reads = static_cast<std::uint64_t>(clients) * cfg.reads_per_client;
  row.elapsed_sec = elapsed;
  row.serves_per_sec =
      elapsed > 0 ? static_cast<double>(row.reads) / elapsed : 0;
  row.valid = check.ok;
  return row;
}

void WriteJson(std::ostream& out, const std::vector<BenchRow>& rows,
               double speedup) {
  out << "{\n  \"schema\": \"treeagg-bench-query-v1\",\n";
  out << "  \"workload\": \"mixed50 + continuous writes\","
      << " \"transport\": \"loopback-tcp\",\n";
  out << "  \"speedup\": " << speedup << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"nodes\": " << r.nodes
        << ", \"daemons\": " << r.daemons << ", \"reads\": " << r.reads
        << ", \"elapsed_sec\": " << r.elapsed_sec
        << ", \"serves_per_sec\": " << r.serves_per_sec
        << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int Run(const BenchConfig& cfg) {
  const Tree tree = MakeKary(cfg.nodes, 2);
  const RequestSequence sigma =
      MakeWorkload("mixed50", tree, cfg.requests, 37);

  std::cout << "Snapshot query tier vs mechanism probes — " << cfg.nodes
            << "-node kary2 tree, " << cfg.daemons << " daemons ("
            << cfg.placement << " placement), loopback TCP\nmixed50 x"
            << sigma.size() << " driver rows; " << cfg.clients
            << " query clients x " << cfg.reads_per_client
            << " reads under a continuous write stream\n\n";

  std::vector<BenchRow> rows;
  rows.push_back(
      RunDriverRow("mechanism/probes", ProbeVia::kMechanism, tree, sigma, cfg));
  rows.push_back(
      RunDriverRow("snapshot/driver", ProbeVia::kSnapshot, tree, sigma, cfg));
  rows.push_back(RunClientsRow(tree, cfg));

  TextTable table({"series", "reads", "elapsed s", "serves/s", "valid"});
  for (const BenchRow& r : rows) {
    table.AddRow({r.name, std::to_string(r.reads), Fmt(r.elapsed_sec, 3),
                  Fmt(r.serves_per_sec, 0), r.valid ? "ok" : "FAIL"});
  }
  std::cout << table.ToString();

  const double mechanism = rows[0].serves_per_sec;
  const double best_snapshot =
      std::max(rows[1].serves_per_sec, rows[2].serves_per_sec);
  const double speedup = mechanism > 0 ? best_snapshot / mechanism : 0;
  std::cout << "\nsnapshot read speedup over mechanism probes: "
            << Fmt(speedup, 1) << "x (driver "
            << Fmt(rows[1].serves_per_sec / std::max(mechanism, 1e-9), 1)
            << "x, clients "
            << Fmt(rows[2].serves_per_sec / std::max(mechanism, 1e-9), 1)
            << "x)\n";

  if (!cfg.out_path.empty()) {
    std::ofstream out(cfg.out_path);
    if (!out) {
      std::cerr << "cannot open " << cfg.out_path << "\n";
      return 1;
    }
    WriteJson(out, rows, speedup);
    std::cout << "wrote " << cfg.out_path << "\n";
  }

  bool ok = true;
  for (const BenchRow& r : rows) ok &= r.valid;
  if (!ok) {
    std::cout << "\nFAIL: a row failed its consistency validation\n";
    return 1;
  }
  if (speedup < cfg.min_speedup) {
    std::cout << "\nFAIL: speedup " << Fmt(speedup, 1) << "x under the "
              << Fmt(cfg.min_speedup, 1) << "x floor\n";
    return 1;
  }
  std::cout << "\nPASS: all rows valid, speedup >= " << Fmt(cfg.min_speedup, 1)
            << "x\n";
  return 0;
}

}  // namespace
}  // namespace treeagg

int main(int argc, char** argv) {
  treeagg::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--out" && (value = next())) {
      cfg.out_path = value;
    } else if (arg == "--nodes" && (value = next())) {
      cfg.nodes = static_cast<treeagg::NodeId>(std::stol(value));
    } else if (arg == "--daemons" && (value = next())) {
      cfg.daemons = static_cast<int>(std::stol(value));
    } else if (arg == "--placement" && (value = next())) {
      cfg.placement = value;
    } else if (arg == "--requests" && (value = next())) {
      cfg.requests = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--clients" && (value = next())) {
      cfg.clients = static_cast<int>(std::stol(value));
    } else if (arg == "--reads-per-client" && (value = next())) {
      cfg.reads_per_client = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--min-speedup" && (value = next())) {
      cfg.min_speedup = std::stod(value);
    } else {
      std::cerr << "usage: bench_query_throughput [--out FILE] [--nodes N]"
                   " [--daemons D] [--placement block|rr|subtree]"
                   " [--requests R] [--clients K] [--reads-per-client Q]"
                   " [--min-speedup X]\n";
      return 2;
    }
  }
  return treeagg::Run(cfg);
}
