// E4 — Figure 5: the LP bounding RWW's competitive ratio.
//
// Builds the linear program from the generated transition system, solves it
// with the in-repo simplex solver, and reports:
//   * the optimum c (paper: 5/2);
//   * a potential function achieving it;
//   * feasibility of the paper's reported solution
//     Phi = (0, 2, 3, 5/2, 2, 1/2), c = 5/2;
//   * infeasibility of any c below 5/2 (tightness of the LP).
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "lp/transition_system.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Figure 5 — LP for the competitive ratio of RWW\n\n";
  const auto transitions = BuildJointTransitions();
  std::cout << "constraints (one per nontrivial transition):\n";
  for (const Transition& t : transitions) {
    if (!t.trivial()) std::cout << "  " << t.ToInequality() << "\n";
  }

  const LpProblem lp = BuildCompetitiveLp(transitions);
  const LpSolution sol = SolveLp(lp);
  if (!sol.optimal()) {
    std::cout << "\nLP did not solve to optimality!\n";
    return 1;
  }

  std::cout << "\nsolver optimum: c = " << sol.value << "  (paper: 5/2)\n";
  TextTable table({"variable", "solver", "paper"});
  const auto paper = PaperLpSolution();
  const char* names[] = {"Phi(0,0)", "Phi(0,1)", "Phi(0,2)", "Phi(1,0)",
                         "Phi(1,1)", "Phi(1,2)", "c"};
  for (int i = 0; i < kNumLpVars; ++i) {
    table.AddRow({names[i], Fmt(sol.x[static_cast<std::size_t>(i)], 3),
                  Fmt(paper[static_cast<std::size_t>(i)], 3)});
  }
  std::cout << table.ToString();

  bool ok = std::abs(sol.value - 2.5) < 1e-7;
  const bool paper_feasible = IsFeasible(lp, paper, 1e-9);
  std::cout << "\npaper's solution feasible: "
            << (paper_feasible ? "yes" : "NO") << "\n";
  ok &= paper_feasible;

  {
    LpProblem tight = lp;
    std::vector<double> row(kNumLpVars, 0.0);
    row[kNumLpVars - 1] = 1.0;
    tight.AddRow(std::move(row), 2.5 - 1e-3);
    const bool below_infeasible =
        SolveLp(tight).status == LpSolution::Status::kInfeasible;
    std::cout << "c < 5/2 infeasible:        "
              << (below_infeasible ? "yes" : "NO") << "\n";
    ok &= below_infeasible;
  }

  std::cout << (ok ? "\nFigure 5 reproduced: optimum c = 5/2.\n"
                   : "\nFAILED to reproduce Figure 5.\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
