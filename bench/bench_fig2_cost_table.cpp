// E1 — Figure 2: per-edge message costs of any lease-based algorithm.
//
// Drives the real protocol through each of the paper's nine
// (state, request, next-state) rows and measures the messages crossing the
// chosen ordered pair, reproducing the table's cost column exactly.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/table.h"
#include "core/extra_policies.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

struct RowResult {
  std::string state, request, next_state;
  int paper_cost;
  std::int64_t measured;
};

int Run() {
  std::cout << "Figure 2 — per-request cost on an ordered neighbor pair "
               "(u, v)\nmeasured by driving the protocol through each row's "
               "scenario.\n\n";
  std::vector<RowResult> rows;

  // Rows are measured on the pair (u=0, v=1) of a 2-node tree unless noted.
  {
    // false / R / false: pull-all never takes the lease.
    Tree t({0, 0});
    AggregationSystem sys(t, PullAllFactory());
    const auto before = sys.trace().EdgeCost(0, 1).total();
    sys.Combine(1);
    rows.push_back({"false", "R", "false", 2,
                    sys.trace().EdgeCost(0, 1).total() - before});
  }
  {
    // false / R / true: RWW grants on the response.
    Tree t({0, 0});
    AggregationSystem sys(t, RwwFactory());
    sys.Combine(1);
    rows.push_back({"false", "R", "true", 2, sys.trace().EdgeCost(0, 1).total()});
  }
  {
    // false / W / false: unleased writes are silent.
    Tree t({0, 0});
    AggregationSystem sys(t, RwwFactory());
    sys.Write(0, 1.0);
    rows.push_back({"false", "W", "false", 0, sys.trace().EdgeCost(0, 1).total()});
  }
  {
    // false / N / false: requests of sigma(v, u) with no lease: silent for
    // the (u, v) pair. Writes at 1 are noops for pair (0, 1).
    Tree t({0, 0});
    AggregationSystem sys(t, RwwFactory());
    sys.Write(1, 1.0);
    rows.push_back({"false", "N", "false", 0, sys.trace().EdgeCost(0, 1).total()});
  }
  {
    // true / R / true: leased reads are free.
    Tree t({0, 0});
    AggregationSystem sys(t, RwwFactory());
    sys.Combine(1);  // sets lease
    const auto before = sys.trace().EdgeCost(0, 1).total();
    sys.Combine(1);
    rows.push_back({"true", "R", "true", 0,
                    sys.trace().EdgeCost(0, 1).total() - before});
  }
  {
    // true / W / false: a (1,1)-policy breaks on the first write:
    // update + release.
    Tree t({0, 0});
    AggregationSystem sys(t, AbFactory(1, 1));
    sys.Combine(1);
    const auto before = sys.trace().EdgeCost(0, 1).total();
    sys.Write(0, 1.0);
    rows.push_back({"true", "W", "false", 2,
                    sys.trace().EdgeCost(0, 1).total() - before});
  }
  {
    // true / W / true: RWW's first write under a fresh lease: update only.
    Tree t({0, 0});
    AggregationSystem sys(t, RwwFactory());
    sys.Combine(1);
    const auto before = sys.trace().EdgeCost(0, 1).total();
    sys.Write(0, 1.0);
    rows.push_back({"true", "W", "true", 1,
                    sys.trace().EdgeCost(0, 1).total() - before});
  }
  {
    // true / N / false: a release triggered by a request of sigma(v, u).
    // Star 0 - 1 - 2 (center 1), pair (u=0, v=1): after a combine at 2 the
    // leases 0->1 and 1->2 hold. A write at 1 (a noop for the pair (0,1))
    // makes the eager policy release 2's lease and then, cascading, 1
    // releases the (0,1) lease: exactly one release crosses (0,1).
    Tree t({0, 0, 1});  // 1 is the center: edges (0,1), (1,2)
    AggregationSystem sys(t, EagerBreakFactory());
    sys.Combine(2);  // grants 0->1 and 1->2
    const auto before = sys.trace().EdgeCost(0, 1).total();
    sys.Write(1, 1.0);  // in sigma(1, 0): a noop for pair (0, 1)
    rows.push_back({"true", "N", "false", 1,
                    sys.trace().EdgeCost(0, 1).total() - before});
  }
  {
    // true / N / true: RWW never reacts to sigma(v, u) requests (Lemma 4.1).
    Tree t({0, 0});
    AggregationSystem sys(t, RwwFactory());
    sys.Combine(1);
    const auto before = sys.trace().EdgeCost(0, 1).total();
    sys.Write(1, 3.0);  // noop for pair (0, 1)
    rows.push_back({"true", "N", "true", 0,
                    sys.trace().EdgeCost(0, 1).total() - before});
  }

  TextTable table({"u.granted[v] in Q", "request", "u.granted[v] in Q'",
                   "paper cost", "measured"});
  bool ok = true;
  for (const RowResult& r : rows) {
    table.AddRow({r.state, r.request, r.next_state,
                  std::to_string(r.paper_cost), std::to_string(r.measured)});
    ok &= (r.measured == r.paper_cost);
  }
  std::cout << table.ToString();
  std::cout << (ok ? "\nAll 9 rows match Figure 2.\n"
                   : "\nMISMATCH against Figure 2!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
