// E-extra — message cost under leases is local: it scales with the
// DISTANCE between the active reader and writer, not with tree size.
//
// Workload: ping-pong rounds (1 write at one end, 1 combine at distance d)
// on a 65-node path. Predicted messages per round (steady state):
//
//   * lease-based (RWW, and push-all, which coincides with it here):
//     ~d — after the first combine, off-path subtrees hold quiet leases
//     forever (nothing there is ever written), and each write sends one
//     update per path edge. Cost tracks the ACTIVE path only.
//   * pull-all: 2(n-1) = 128 regardless of d — a combine with no cached
//     state must probe the ENTIRE tree, not just the path to the writer.
//
// This is the quantitative version of the paper's locality intuition: the
// per-edge decomposition (Lemma 3.9) charges only the edges that actually
// separate readers from writers, while a stateless strategy pays for the
// whole topology on every read.
#include <iostream>

#include "analysis/table.h"
#include "core/policies.h"
#include "offline/edge_dp.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Messages per ping-pong round vs reader-writer distance "
               "(65-node path,\nwriter at node 0, 500 rounds)\n\n";
  Tree tree = MakePath(65);
  TextTable table({"distance d", "RWW", "pull-all", "push-all", "OPT bound",
                   "RWW/OPT"});
  bool ok = true;
  const std::size_t rounds = 500;
  for (const NodeId d : {1, 2, 4, 8, 16, 32, 64}) {
    const RequestSequence sigma = MakePingPong(/*reader=*/d, /*writer=*/0,
                                               rounds);
    const double per = static_cast<double>(rounds);
    const auto run = [&](const PolicyFactory& f) {
      AggregationSystem sys(tree, f);
      sys.Execute(sigma);
      return static_cast<double>(sys.trace().TotalMessages()) / per;
    };
    const double rww = run(RwwFactory());
    const double pull = run(PullAllFactory());
    const double push = run(PushAllFactory());
    const double opt =
        static_cast<double>(OptimalLeaseBasedLowerBound(sigma, tree)) / per;
    ok &= rww <= 2.5 * opt + 1e-9;
    // Locality: RWW must scale with d; pull-all must pay the whole tree.
    ok &= rww <= static_cast<double>(d) + 2.0;
    ok &= pull >= 2.0 * 63;
    table.AddRow({std::to_string(d), Fmt(rww, 2), Fmt(pull, 2),
                  Fmt(push, 2), Fmt(opt, 2), Fmt(rww / opt, 3)});
  }
  std::cout << table.ToString();
  std::cout << "\nLease-based cost tracks the active path (~d per round); "
               "pull-all pays the\nwhole tree (2(n-1) = 128) on every read, "
               "at any distance. With a single\nreader, push-all's lease "
               "graph equals RWW's, so their costs coincide.\n";
  std::cout << (ok ? "Per-edge locality and the 5/2 bound hold at every "
                     "distance.\n"
                   : "BOUND VIOLATED!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
