// MLAP latency-vs-messages frontier — delay-and-batch against RWW.
//
// Beyond the paper: the MLAP policy family (Bienkowski et al. delay rule,
// BFNT deadline rule) trades response latency for message volume by
// batching combine requests in front of the unmodified RWW mechanism. On
// bursty workloads the frontier must be real: some MLAP operating point
// beats plain RWW on messages while paying a nonzero total wait, and the
// delay-variant online cost stays within a small constant of the offline
// per-node batching optimum it plays against (the theory bound is
// O(depth^2); observed ratios sit far below it).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "core/extra_policies.h"
#include "core/mlap.h"
#include "offline/mlap_dp.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::int64_t RunMessages(const Tree& tree, const RequestSequence& sigma) {
  AggregationSystem sys(tree, RwwFactory());
  sys.Execute(sigma);
  return sys.trace().TotalMessages();
}

int Run() {
  std::cout << "MLAP delay-and-batch frontier (messages vs total wait; "
               "RWW = no batching, zero wait)\n\n";
  const Tree tree = MakeKary(31, 2);
  const std::vector<std::string> workloads = {"onoff", "pareto"};
  const std::vector<std::string> specs = {"mlap(4)", "mlap", "mlap(0.25)",
                                          "mlap-d", "mlap-d(0.25)"};
  constexpr std::size_t kLength = 2000;
  constexpr std::uint64_t kSeed = 31;

  TextTable table(
      {"workload", "policy", "messages", "flushes", "total_wait", "ratio"});
  bool frontier_ok = true;
  bool waits_ok = true;
  double worst_delay_ratio = 0;

  for (const std::string& wl : workloads) {
    const TimedWorkload timed = MakeTimedWorkload(wl, tree, kLength, kSeed);
    const std::int64_t rww_messages = RunMessages(tree, timed.sigma);
    table.AddRow({wl, "RWW", std::to_string(rww_messages), "-", "0", "-"});

    std::int64_t best_messages = rww_messages;
    for (const std::string& spec : specs) {
      const MlapParams params = ParseMlapSpec(spec);
      const MlapPlan plan =
          BuildMlapPlan(tree, timed.sigma, params, &timed.ticks);
      const MlapPricing pricing =
          PriceMlapPlan(tree, timed.sigma, params, plan, &timed.ticks);
      const std::int64_t messages = RunMessages(tree, plan.batched);
      best_messages = std::min(best_messages, messages);
      waits_ok &= plan.total_wait > 0;
      if (!params.deadline_variant) {
        worst_delay_ratio = std::max(worst_delay_ratio, pricing.ratio);
      }
      table.AddRow({wl, spec, std::to_string(messages),
                    std::to_string(plan.flushes),
                    std::to_string(plan.total_wait), Fmt(pricing.ratio, 3)});
    }
    // The frontier is real on every bursty workload: batching must buy a
    // strict message reduction somewhere on the knob range.
    frontier_ok &= best_messages < rww_messages;
  }

  std::cout << table.ToString();
  std::cout << "\nsome MLAP point beats RWW on messages (both workloads): "
            << (frontier_ok ? "yes" : "NO") << "\n";
  std::cout << "every MLAP point pays nonzero wait: "
            << (waits_ok ? "yes" : "NO") << "\n";
  // The observed delay-rule ratio must stay comfortably inside the
  // O(depth^2) guarantee; 4.0 is far above anything a healthy automaton
  // produces on these instances (observed ~1.3-1.6) yet far below a
  // broken one (a never-flushing or always-flushing bug blows past it).
  const bool ratio_ok = worst_delay_ratio >= 1.0 && worst_delay_ratio <= 4.0;
  std::cout << "delay-rule ratio vs offline optimum in [1, 4]: "
            << Fmt(worst_delay_ratio, 3) << (ratio_ok ? " yes" : " NO")
            << "\n";
  return frontier_ok && waits_ok && ratio_ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
