// E20 — networked-backend throughput over loopback TCP.
//
// Runs one pipelined workload per policy (RWW, push-all, pull-all) on a
// 32-node k-ary tree hosted by an in-process LocalCluster: every daemon is
// a real poll-loop thread with an OS-assigned ephemeral port, and every
// cross-daemon tree edge is a real TCP connection carrying treeagg-wire-v1
// frames. Reported requests/s is end-to-end (inject over the wire -> all
// completions observed -> cluster quiescent), so it prices the full
// protocol: framing, syscalls, and the Figure 1/6 message rounds.
//
// Exits non-zero if any run fails the causal consistency checker (the
// wire must not change the algorithm). With --out FILE, also writes the
// machine-readable BENCH_net.json committed at the repo root.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "consistency/causal_checker.h"
#include "core/aggregate_op.h"
#include "net/local_cluster.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

struct BenchRow {
  std::string policy;
  std::uint64_t requests = 0;
  std::uint64_t total_messages = 0;
  double elapsed_sec = 0;
  double requests_per_sec = 0;
  bool causal_ok = false;
};

int Run(const std::string& out_path) {
  const NodeId kNodes = 32;
  const int kDaemons = 4;
  const std::size_t kRequests = 400;
  const Tree tree = MakeKary(kNodes, 2);
  const std::vector<NodeId> parent = ParentVector(tree);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, kRequests, 29);
  const AggregateOp& op = OpByName("sum");

  std::cout << "Networked backend throughput — " << kNodes
            << "-node kary2 tree, " << kDaemons
            << " daemons (rr placement), loopback TCP,\npipelined mixed50 "
               "workload of "
            << sigma.size() << " requests\n\n";

  TextTable table(
      {"policy", "requests", "messages", "seconds", "req/s", "causal"});
  std::vector<BenchRow> rows;
  bool ok = true;
  for (const std::string policy : {"RWW", "push-all", "pull-all"}) {
    LocalCluster::Options options;
    options.daemons = kDaemons;
    options.placement = "rr";
    options.policy = policy;
    const NetRunResult result =
        RunNetWorkload(parent, sigma, options, /*sequential=*/false);
    const CheckResult causal =
        CheckCausalConsistency(result.history, result.ghosts, op, kNodes);
    ok &= causal.ok;

    BenchRow row;
    row.policy = policy;
    row.requests = sigma.size();
    row.total_messages = result.total_messages;
    row.elapsed_sec = result.elapsed_sec;
    row.requests_per_sec = result.requests_per_sec;
    row.causal_ok = causal.ok;
    rows.push_back(row);
    table.AddRow({policy, std::to_string(row.requests),
                  std::to_string(row.total_messages), Fmt(row.elapsed_sec, 3),
                  Fmt(row.requests_per_sec, 0), causal.ok ? "ok" : "FAIL"});
    if (!causal.ok) std::cout << "causal violation: " << causal.message << "\n";
  }
  std::cout << table.ToString();

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    out << "{\n  \"schema\": \"treeagg-bench-net-v1\",\n";
    out << "  \"tree\": \"kary2\", \"nodes\": " << kNodes
        << ", \"daemons\": " << kDaemons << ", \"placement\": \"rr\",\n";
    out << "  \"workload\": \"mixed50\", \"transport\": \"loopback-tcp\",\n";
    out << "  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const BenchRow& r = rows[i];
      out << "    {\"policy\": \"" << r.policy
          << "\", \"requests\": " << r.requests
          << ", \"total_messages\": " << r.total_messages
          << ", \"elapsed_sec\": " << r.elapsed_sec
          << ", \"requests_per_sec\": " << r.requests_per_sec
          << ", \"causal_ok\": " << (r.causal_ok ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << out_path << "\n";
  }

  std::cout << (ok ? "\nPASS: all runs causally consistent\n"
                   : "\nFAIL: causal checker rejected a networked run\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_net_throughput [--out FILE]\n";
      return 2;
    }
  }
  return treeagg::Run(out_path);
}
