// E20/E60 — networked-backend throughput over loopback TCP.
//
// Two experiments in one binary:
//
//   * Small grid (E20): one pipelined mixed50 workload per policy (RWW,
//     push-all, pull-all) on a 32-node k-ary tree hosted by 4 daemons,
//     each policy run twice — wire batching off (`<policy>/base`) and on
//     (`<policy>/batch`, kBatch frames + 2 reactors/daemon). The paired
//     rows price the tentpole directly: same workload, same placement,
//     only the transport differs. Batched rows report messages-per-frame
//     and frames-per-syscall from the daemons' obs counters.
//
//   * Big row (E60): a 100k-node tree over 64 daemons with subtree
//     (DFS-contiguous) placement, batching and multi-reactor on — the
//     scale target of the 10x issue. `--no-big` skips it (CI's bench
//     gate compares only the series the two files share).
//
// Reported requests/s is end-to-end (inject over the wire -> all
// completions observed -> cluster quiescent), so it prices the full
// protocol: framing, syscalls, and the Figure 1/6 message rounds.
//
// Exits non-zero if any run fails the causal consistency checker (the
// wire must not change the algorithm). With --out FILE, writes the
// machine-readable treeagg-bench-net-v2 JSON committed as BENCH_net.json
// at the repo root (tools/check_bench.py reads v1 and v2).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "consistency/causal_checker.h"
#include "core/aggregate_op.h"
#include "core/extra_policies.h"
#include "net/local_cluster.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

struct BenchConfig {
  // Small grid.
  NodeId nodes = 32;
  int daemons = 4;
  std::string placement = "rr";
  std::size_t requests = 4000;
  std::size_t batch_bytes = 32768;
  std::int64_t batch_flush_us = 200;
  int reactors = 2;
  // Pipelined-mode message counts are timing-bimodal (a slow interleaving
  // defeats node-level absorption and cascades into 100x more wire
  // traffic), so each small-grid series reports the median-by-req/s of
  // `reps` runs. The big row runs once.
  int reps = 3;
  // `--big-only` skips the small grid (CI's large-tree smoke wants just
  // the 10^5-node row on a bounded clock).
  bool small = true;
  // Big row.
  bool big = true;
  NodeId big_nodes = 100000;
  int big_daemons = 64;
  std::size_t big_requests = 2000;
  std::string out_path;
};

struct BenchRow {
  std::string name;  // stable series key for check_bench.py
  std::string policy;
  NodeId nodes = 0;
  int daemons = 0;
  std::string placement;
  int reactors = 1;
  std::size_t batch_bytes = 0;
  std::uint64_t requests = 0;
  std::uint64_t total_messages = 0;
  double elapsed_sec = 0;
  double requests_per_sec = 0;
  bool causal_ok = false;
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_frames = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t send_syscalls = 0;

  double MsgsPerFrame() const {
    return wire_frames > 0
               ? static_cast<double>(wire_messages) / wire_frames
               : 0.0;
  }
  // All frame types over all ::send calls — the syscall-coalescing win
  // (acks and driver completions included on both sides of the ratio).
  double FramesPerSyscall() const {
    return send_syscalls > 0
               ? static_cast<double>(frames_sent) / send_syscalls
               : 0.0;
  }
};

// One pipelined run; `batched` turns on kBatch coalescing and the
// multi-reactor daemon, everything else held fixed. `full_check` runs the
// causal checker, whose per-node serialization scan is quadratic in tree
// size — fine on the 32-node grid, intractable at 100k nodes. The big
// row instead appends a Combine at the root and diffs its answer against
// the sequential simulator (every write must land exactly once), passing
// `expected_final` here.
BenchRow RunOne(const std::string& name, const std::string& policy,
                const Tree& tree, const RequestSequence& sigma, int daemons,
                const std::string& placement, bool batched, bool full_check,
                Real expected_final, const BenchConfig& cfg) {
  LocalCluster::Options options;
  options.daemons = daemons;
  options.placement = placement;
  options.policy = policy;
  options.ghost_logging = full_check;  // ghosts only feed the checker
  options.metrics = true;  // obs counters feed the per-frame ratios
  if (batched) {
    options.transport.batch_bytes = cfg.batch_bytes;
    options.transport.batch_flush_us = cfg.batch_flush_us;
    options.reactors = cfg.reactors;
  }
  const std::vector<NodeId> parent = ParentVector(tree);
  CheckResult causal;
  NetRunResult result;
  if (full_check) {
    result = RunNetWorkload(parent, sigma, options, /*sequential=*/false);
    causal = CheckCausalConsistency(result.history, result.ghosts,
                                    OpByName(options.op), tree.size());
  } else {
    // Two-phase run: time the pipelined workload to quiescence, THEN
    // inject one root combine in the settled network — its answer must
    // match the sequential simulator bit-for-bit (every write landed
    // exactly once, "sum" over integral args is exact).
    LocalCluster cluster(parent, options);
    NetDriver& driver = cluster.driver();
    const auto start = std::chrono::steady_clock::now();
    for (const Request& r : sigma) {
      if (r.op == ReqType::kWrite) {
        driver.InjectWrite(r.node, r.arg);
      } else {
        driver.InjectCombine(r.node);
      }
    }
    driver.WaitAllCompleted();
    driver.WaitQuiescent();
    result.elapsed_sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (!sigma.empty() && result.elapsed_sec > 0) {
      result.requests_per_sec =
          static_cast<double>(sigma.size()) / result.elapsed_sec;
    }
    const ReqId final_id = driver.InjectCombine(0);
    driver.WaitCompleted(final_id);
    const Real final_value = driver.history().record(final_id).retval;
    result.total_messages = driver.TotalMessages();
    const bool completed = driver.history().AllCompleted();
    cluster.Stop();
    result.wire_messages =
        cluster.SumDaemonCounters("treeagg_transport_messages_sent_total");
    result.wire_frames = cluster.SumDaemonCounters(
        "treeagg_transport_protocol_frames_sent_total");
    result.frames_sent =
        cluster.SumDaemonCounters("treeagg_transport_frames_sent_total");
    result.send_syscalls =
        cluster.SumDaemonCounters("treeagg_transport_send_syscalls_total");
    if (!cluster.DaemonError().empty()) {
      causal = CheckResult::Fail("daemon failed: " + cluster.DaemonError());
    } else if (!completed) {
      causal = CheckResult::Fail("history contains incomplete requests");
    } else if (std::fabs(final_value - expected_final) > 1e-6) {
      causal = CheckResult::Fail(
          "final aggregate " + std::to_string(final_value) +
          " != sequential simulator " + std::to_string(expected_final));
    } else {
      causal = CheckResult::Ok();
    }
  }

  BenchRow row;
  row.name = name;
  row.policy = policy;
  row.nodes = tree.size();
  row.daemons = daemons;
  row.placement = placement;
  row.reactors = batched ? cfg.reactors : 1;
  row.batch_bytes = batched ? cfg.batch_bytes : 0;
  row.requests = sigma.size();
  row.total_messages = result.total_messages;
  row.elapsed_sec = result.elapsed_sec;
  row.requests_per_sec = result.requests_per_sec;
  row.causal_ok = causal.ok;
  row.wire_messages = result.wire_messages;
  row.wire_frames = result.wire_frames;
  row.frames_sent = result.frames_sent;
  row.send_syscalls = result.send_syscalls;
  if (!causal.ok) {
    std::cout << name << " causal violation: " << causal.message << "\n";
  }
  return row;
}

void WriteJson(std::ostream& out, const std::vector<BenchRow>& rows) {
  out << "{\n  \"schema\": \"treeagg-bench-net-v2\",\n";
  out << "  \"workload\": \"mixed50\", \"transport\": \"loopback-tcp\",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"policy\": \"" << r.policy
        << "\", \"nodes\": " << r.nodes << ", \"daemons\": " << r.daemons
        << ", \"placement\": \"" << r.placement
        << "\", \"reactors\": " << r.reactors
        << ", \"batch_bytes\": " << r.batch_bytes
        << ", \"requests\": " << r.requests
        << ", \"total_messages\": " << r.total_messages
        << ", \"elapsed_sec\": " << r.elapsed_sec
        << ", \"requests_per_sec\": " << r.requests_per_sec
        << ", \"wire_messages\": " << r.wire_messages
        << ", \"wire_frames\": " << r.wire_frames
        << ", \"send_syscalls\": " << r.send_syscalls
        << ", \"msgs_per_frame\": " << r.MsgsPerFrame()
        << ", \"frames_per_syscall\": " << r.FramesPerSyscall()
        << ", \"causal_ok\": " << (r.causal_ok ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int Run(const BenchConfig& cfg) {
  const Tree tree = MakeKary(cfg.nodes, 2);
  const RequestSequence sigma =
      MakeWorkload("mixed50", tree, cfg.requests, 29);

  std::cout << "Networked backend throughput — " << cfg.nodes
            << "-node kary2 tree, " << cfg.daemons << " daemons ("
            << cfg.placement
            << " placement), loopback TCP,\npipelined mixed50 workload of "
            << sigma.size() << " requests; batch = " << cfg.batch_bytes
            << "B/" << cfg.batch_flush_us << "us, " << cfg.reactors
            << " reactors\n\n";

  TextTable table({"series", "req/s", "messages", "msg/frame", "frame/syscall",
                   "causal"});
  std::vector<BenchRow> rows;
  bool ok = true;
  const std::vector<std::string> policies =
      cfg.small ? std::vector<std::string>{"RWW", "push-all", "pull-all"}
                : std::vector<std::string>{};
  for (const std::string& policy : policies) {
    for (const bool batched : {false, true}) {
      const std::string name = policy + (batched ? "/batch" : "/base");
      std::vector<BenchRow> reps;
      for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
        reps.push_back(RunOne(name, policy, tree, sigma, cfg.daemons,
                              cfg.placement, batched, /*full_check=*/true,
                              /*expected_final=*/0, cfg));
      }
      std::sort(reps.begin(), reps.end(),
                [](const BenchRow& a, const BenchRow& b) {
                  return a.requests_per_sec < b.requests_per_sec;
                });
      BenchRow row = reps[reps.size() / 2];  // median rep, counters intact
      // A causal violation in ANY rep fails the bench regardless of which
      // rep the median picks.
      for (const BenchRow& r : reps) row.causal_ok &= r.causal_ok;
      ok &= row.causal_ok;
      table.AddRow({row.name, Fmt(row.requests_per_sec, 0),
                    std::to_string(row.total_messages),
                    Fmt(row.MsgsPerFrame(), 2), Fmt(row.FramesPerSyscall(), 2),
                    row.causal_ok ? "ok" : "FAIL"});
      rows.push_back(row);
    }
    // The tentpole's headline ratios, same workload with and without
    // batching.
    const BenchRow& base = rows[rows.size() - 2];
    const BenchRow& batch = rows.back();
    if (base.requests_per_sec > 0) {
      std::cout << policy << ": batching speedup "
                << Fmt(batch.requests_per_sec / base.requests_per_sec, 2)
                << "x req/s, " << Fmt(batch.MsgsPerFrame(), 2)
                << " msgs/frame (base " << Fmt(base.MsgsPerFrame(), 2)
                << ")\n";
    }
  }

  if (cfg.big) {
    const Tree big_tree = MakeKary(cfg.big_nodes, 8);
    const RequestSequence big_sigma =
        MakeWorkload("mixed50", big_tree, cfg.big_requests, 31);
    std::cout << "\nbig row: " << cfg.big_nodes << "-node kary8 tree, "
              << cfg.big_daemons
              << " daemons (subtree placement), batching on..." << std::endl;
    // The expected answer of a root combine in the settled network, from
    // the reference executor: workload, then one combine at node 0.
    RequestSequence sim_sigma = big_sigma;
    sim_sigma.push_back(Request::Combine(0));
    AggregationSystem::Options sim_options;
    sim_options.op = &OpByName("sum");
    sim_options.ghost_logging = false;
    AggregationSystem sim(big_tree, PolicyBySpec("RWW"), sim_options);
    sim.Execute(sim_sigma);
    const Real expected_final = sim.history().records().back().retval;
    const BenchRow row =
        RunOne("big-subtree/batch", "RWW", big_tree, big_sigma,
               cfg.big_daemons, "subtree", /*batched=*/true,
               /*full_check=*/false, expected_final, cfg);
    ok &= row.causal_ok;
    table.AddRow({row.name, Fmt(row.requests_per_sec, 0),
                  std::to_string(row.total_messages),
                  Fmt(row.MsgsPerFrame(), 2), Fmt(row.FramesPerSyscall(), 2),
                  row.causal_ok ? "ok" : "FAIL"});
    rows.push_back(row);
  }

  std::cout << "\n" << table.ToString();

  if (!cfg.out_path.empty()) {
    std::ofstream out(cfg.out_path);
    if (!out) {
      std::cerr << "cannot open " << cfg.out_path << "\n";
      return 1;
    }
    WriteJson(out, rows);
    std::cout << "\nwrote " << cfg.out_path << "\n";
  }

  std::cout << (ok ? "\nPASS: all runs causally consistent\n"
                   : "\nFAIL: causal checker rejected a networked run\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main(int argc, char** argv) {
  treeagg::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--out" && (value = next())) {
      cfg.out_path = value;
    } else if (arg == "--nodes" && (value = next())) {
      cfg.nodes = static_cast<treeagg::NodeId>(std::stol(value));
    } else if (arg == "--daemons" && (value = next())) {
      cfg.daemons = static_cast<int>(std::stol(value));
    } else if (arg == "--placement" && (value = next())) {
      cfg.placement = value;
    } else if (arg == "--requests" && (value = next())) {
      cfg.requests = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--batch-bytes" && (value = next())) {
      cfg.batch_bytes = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--batch-flush-us" && (value = next())) {
      cfg.batch_flush_us = std::stoll(value);
    } else if (arg == "--reactors" && (value = next())) {
      cfg.reactors = static_cast<int>(std::stol(value));
    } else if (arg == "--reps" && (value = next())) {
      cfg.reps = static_cast<int>(std::stol(value));
    } else if (arg == "--no-big") {
      cfg.big = false;
    } else if (arg == "--big-only") {
      cfg.small = false;
    } else if (arg == "--big-nodes" && (value = next())) {
      cfg.big_nodes = static_cast<treeagg::NodeId>(std::stol(value));
    } else if (arg == "--big-daemons" && (value = next())) {
      cfg.big_daemons = static_cast<int>(std::stol(value));
    } else if (arg == "--big-requests" && (value = next())) {
      cfg.big_requests = static_cast<std::size_t>(std::stoul(value));
    } else {
      std::cerr << "usage: bench_net_throughput [--out FILE] [--nodes N]"
                   " [--daemons D] [--placement block|rr|subtree]"
                   " [--requests R] [--batch-bytes B] [--batch-flush-us U]"
                   " [--reactors N] [--reps R] [--no-big] [--big-only]"
                   " [--big-nodes N]"
                   " [--big-daemons D] [--big-requests R]\n";
      return 2;
    }
  }
  return treeagg::Run(cfg);
}
