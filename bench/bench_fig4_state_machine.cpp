// E3 — Figure 4: the joint (F_OPT, F_RWW) state diagram.
//
// The paper's Figure 4 (an image) depicts states S(x, y) and the
// transitions used to derive Figure 5's LP. We regenerate the diagram
// programmatically from Figure 2's cost model + RWW's determinism + OPT's
// choices, print it as a transition table, and verify it matches the
// paper's Figure 5 inequality list exactly (modulo the six trivial
// self-loops the paper omits).
#include <algorithm>
#include <iostream>
#include <set>
#include <tuple>

#include "analysis/table.h"
#include "lp/transition_system.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Figure 4 — states S(F_OPT, F_RWW) and transitions per "
               "request of sigma'(u, v)\n\n";

  const auto transitions = BuildJointTransitions();
  TextTable table({"from", "request", "to", "RWW cost", "OPT cost",
                   "inequality"});
  for (const Transition& t : transitions) {
    table.AddRow({"S(" + std::to_string(t.from_x) + "," +
                      std::to_string(t.from_y) + ")",
                  std::string(1, t.request),
                  "S(" + std::to_string(t.to_x) + "," +
                      std::to_string(t.to_y) + ")",
                  std::to_string(t.rww_cost), std::to_string(t.opt_cost),
                  t.trivial() ? "(trivial)" : t.ToInequality()});
  }
  std::cout << table.ToString();

  const auto key = [](const Transition& t) {
    return std::tuple(t.from_x, t.from_y, t.request, t.to_x, t.to_y,
                      t.rww_cost, t.opt_cost);
  };
  std::set<std::tuple<int, int, char, int, int, int, int>> generated, paper;
  std::size_t trivial = 0;
  for (const Transition& t : transitions) {
    if (t.trivial()) {
      ++trivial;
    } else {
      generated.insert(key(t));
    }
  }
  for (const Transition& t : Figure5Transitions()) paper.insert(key(t));

  std::cout << "\ngenerated transitions: " << transitions.size() << " ("
            << trivial << " trivial self-loops omitted by the paper)\n";
  std::cout << "nontrivial transitions: " << generated.size()
            << ", paper's Figure 5 rows: " << paper.size() << "\n";
  const bool ok = generated == paper;
  std::cout << (ok ? "exact match with the paper's inequality list.\n"
                   : "MISMATCH with the paper's Figure 5!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
