// E-extra — the SDIMS spectrum vs the adaptive lease mechanism.
//
// The paper's introduction argues that SDIMS's flexibility still requires
// applications "to know the read and write access patterns a priori".
// This bench makes that concrete: each static SDIMS strategy
// (update-none / update-up / update-all on a rooted hierarchy) is best
// somewhere on the mix axis and poor elsewhere, while the lease-based RWW
// — with NO tuning — tracks the per-mix winner within a small factor and
// additionally carries the 5/2 worst-case guarantee.
//
// Note the systems solve the same problem on the same tree with the same
// requests; costs are directly comparable message counts.
#include <iostream>
#include <limits>

#include "analysis/table.h"
#include "common/rng.h"
#include "core/policies.h"
#include "sdims/sdims_system.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "SDIMS static strategies vs lease-based RWW\n"
               "(messages per request; 64-node 4-ary hierarchy rooted at 0; "
               "4000 requests;\nreads skew towards the root as in "
               "management workloads)\n\n";
  Tree tree = MakeKary(64, 4);
  TextTable table({"write frac", "update-none", "update-up", "update-all",
                   "RWW", "RWW/best"});
  bool ok = true;
  for (const double wf : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    // Reads concentrated near the root (Zipf over node ids), writes
    // uniform — the canonical monitoring shape.
    Rng rng(5);
    RequestSequence sigma;
    MixedWorkloadConfig config;
    config.length = 4000;
    config.write_fraction = wf;
    config.zipf_s = 0.8;
    sigma = MakeMixed(tree, config, rng);
    const double per = static_cast<double>(sigma.size());

    const auto sdims_cost = [&](SdimsStrategy strategy) {
      SdimsSystem sys(tree, strategy);
      sys.Execute(sigma);
      return static_cast<double>(sys.trace().TotalMessages()) / per;
    };
    const double none = sdims_cost(SdimsStrategy::kUpdateNone);
    const double up = sdims_cost(SdimsStrategy::kUpdateUp);
    const double all = sdims_cost(SdimsStrategy::kUpdateAll);

    AggregationSystem rww_sys(tree, RwwFactory());
    rww_sys.Execute(sigma);
    const double rww =
        static_cast<double>(rww_sys.trace().TotalMessages()) / per;

    const double best = std::min({none, up, all});
    ok &= rww <= 3.0 * best;  // adaptive stays in the winner's ballpark
    table.AddRow({Fmt(wf, 2), Fmt(none, 2), Fmt(up, 2), Fmt(all, 2),
                  Fmt(rww, 2), Fmt(rww / best, 2)});
  }
  std::cout << table.ToString();
  std::cout << "\nEach SDIMS knob wins only on the mix it was tuned for; "
               "RWW needs no\ntuning and stays within a small factor of "
               "the per-mix winner\n(plus the 5/2 offline guarantee no "
               "static strategy has).\n";
  std::cout << (ok ? "Adaptivity claim reproduced.\n"
                   : "UNEXPECTED: RWW strayed far from the best static "
                     "strategy!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
