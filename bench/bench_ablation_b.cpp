// Ablation — why break after TWO writes?
//
// DESIGN.md calls out RWW's write budget b = 2 as the load-bearing design
// choice. This ablation sweeps lease(1, b) for b = 1..8 across workload
// mixes and reports the cost ratio against the per-edge offline optimum.
// Expected shape (and what Theorem 3 predicts on the worst case): small b
// thrashes (pays probe + response again right after releasing), large b
// overpays updates on write bursts; b = 2 minimizes the worst-case column.
#include <iostream>
#include <vector>

#include "analysis/competitive.h"
#include "analysis/table.h"
#include "core/policies.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Ablation: write budget b in lease(1, b)\n"
               "cells = measured cost / offline lease-based optimum\n\n";
  Tree tree = MakeKary(32, 2);
  const std::vector<std::string> workloads = {"mixed25", "mixed50", "mixed75",
                                              "bursty", "hotspot",
                                              "writeheavy"};
  std::vector<std::string> headers = {"b"};
  headers.insert(headers.end(), workloads.begin(), workloads.end());
  headers.push_back("worst");
  TextTable table(headers);

  double best_worst = 1e18;
  int best_b = 0;
  for (int b = 1; b <= 8; ++b) {
    std::vector<std::string> row = {std::to_string(b)};
    double worst = 0;
    for (const std::string& wl : workloads) {
      const RequestSequence sigma = MakeWorkload(wl, tree, 3000, 11);
      const CompetitiveReport report =
          RunCompetitive(tree, AbFactory(1, b), "lease(1,b)", sigma);
      const double ratio = report.RatioVsLeaseOpt();
      worst = std::max(worst, ratio);
      row.push_back(Fmt(ratio, 3));
    }
    // Adversarial column dominates the worst case: ADV(1, b) on an edge.
    {
      Tree two({0, 0});
      const RequestSequence adv = MakeAdversarial(1, 0, 1, b, 800);
      const CompetitiveReport report =
          RunCompetitive(two, AbFactory(1, b), "lease(1,b)", adv);
      worst = std::max(worst, report.RatioVsLeaseOpt());
    }
    row.push_back(Fmt(worst, 3));
    table.AddRow(row);
    if (worst < best_worst) {
      best_worst = worst;
      best_b = b;
    }
  }
  std::cout << table.ToString();
  std::cout << "\nworst-case-minimizing b = " << best_b
            << " (theory: b = 2, worst ratio 5/2)\n";
  const bool ok = (best_b == 2);
  std::cout << (ok ? "Ablation confirms RWW's choice of b = 2.\n"
                   : "UNEXPECTED optimum!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
