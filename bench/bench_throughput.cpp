// E10 — simulator/protocol throughput microbenchmarks (google-benchmark).
//
// Not a paper artifact: quantifies the cost of the substrate itself so
// users can size experiments (requests/second of the sequential driver and
// event rate of the concurrent simulator, by tree size and policy).
#include <benchmark/benchmark.h>

#include "core/policies.h"
#include "offline/edge_dp.h"
#include "sim/concurrent.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

void BM_SequentialRww(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Tree tree = MakeKary(n, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 2000, 1);
  std::int64_t messages = 0;
  for (auto _ : state) {
    AggregationSystem sys(tree, RwwFactory());
    sys.Execute(sigma);
    messages = sys.trace().TotalMessages();
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sigma.size()));
  state.counters["msgs"] = static_cast<double>(messages);
}
BENCHMARK(BM_SequentialRww)->Arg(15)->Arg(63)->Arg(255);

void BM_SequentialPullAll(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Tree tree = MakeKary(n, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 2000, 1);
  for (auto _ : state) {
    AggregationSystem sys(tree, PullAllFactory());
    sys.Execute(sigma);
    benchmark::DoNotOptimize(sys.trace().TotalMessages());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sigma.size()));
}
BENCHMARK(BM_SequentialPullAll)->Arg(63);

void BM_SequentialPushAll(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Tree tree = MakeKary(n, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 2000, 1);
  for (auto _ : state) {
    AggregationSystem sys(tree, PushAllFactory());
    sys.Execute(sigma);
    benchmark::DoNotOptimize(sys.trace().TotalMessages());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sigma.size()));
}
BENCHMARK(BM_SequentialPushAll)->Arg(63);

void BM_ConcurrentSimulator(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Tree tree = MakeKary(n, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 2000, 1);
  for (auto _ : state) {
    ConcurrentSimulator::Options options;
    options.ghost_logging = false;
    options.min_delay = 1;
    options.max_delay = 10;
    ConcurrentSimulator sim(tree, RwwFactory(), options);
    Rng rng(2);
    sim.Run(ScheduleWithGaps(sigma, 2, rng));
    benchmark::DoNotOptimize(sim.trace().TotalMessages());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sigma.size()));
}
BENCHMARK(BM_ConcurrentSimulator)->Arg(15)->Arg(63);

void BM_GhostLoggingOverhead(benchmark::State& state) {
  Tree tree = MakeKary(31, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 500, 1);
  for (auto _ : state) {
    AggregationSystem::Options options;
    options.ghost_logging = true;
    AggregationSystem sys(tree, RwwFactory(), options);
    sys.Execute(sigma);
    benchmark::DoNotOptimize(sys.trace().TotalMessages());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sigma.size()));
}
BENCHMARK(BM_GhostLoggingOverhead);

void BM_OfflineEdgeDp(benchmark::State& state) {
  Tree tree = MakeKary(63, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 5000, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimalLeaseBasedLowerBound(sigma, tree));
  }
}
BENCHMARK(BM_OfflineEdgeDp);

}  // namespace
}  // namespace treeagg

BENCHMARK_MAIN();
