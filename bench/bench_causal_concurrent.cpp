// E9 — Section 5 / Theorem 4: any lease-based algorithm is causally
// consistent in concurrent executions.
//
// Runs every standard policy under heavy concurrency — the discrete-event
// simulator with randomized per-message delays across many seeds, plus the
// multi-threaded actor runtime — and verifies each history with the
// Section 5.3 causal-consistency checker.
#include <iostream>

#include "analysis/table.h"
#include "consistency/causal_checker.h"
#include "core/policies.h"
#include "runtime/actor_runtime.h"
#include "sim/concurrent.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Theorem 4 — causal consistency of lease-based algorithms "
               "under concurrency\n\n";
  bool ok = true;
  TextTable table({"policy", "backend", "runs", "requests/run", "messages",
                   "causal checks"});
  const int kSeeds = 8;
  Tree tree = MakeKary(15, 2);
  const std::size_t kLen = 400;

  for (const NamedPolicy& policy : StandardPolicies()) {
    int passes = 0;
    std::int64_t messages = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      ConcurrentSimulator::Options options;
      options.min_delay = 1;
      options.max_delay = 20;
      options.seed = 1000 + static_cast<std::uint64_t>(seed);
      ConcurrentSimulator sim(tree, policy.factory, options);
      Rng rng(options.seed);
      const RequestSequence sigma =
          MakeWorkload("mixed50", tree, kLen, options.seed);
      sim.Run(ScheduleWithGaps(sigma, 3, rng));
      messages += sim.trace().TotalMessages();
      const CheckResult r = CheckCausalConsistency(
          sim.history(), sim.GhostStates(), SumOp(), tree.size());
      if (r.ok && sim.history().AllCompleted()) {
        ++passes;
      } else {
        std::cout << "FAIL (" << policy.name << ", seed " << seed
                  << "): " << r.message << "\n";
      }
    }
    ok &= (passes == kSeeds);
    table.AddRow({policy.name, "DES sim", std::to_string(kSeeds),
                  std::to_string(kLen), std::to_string(messages),
                  std::to_string(passes) + "/" + std::to_string(kSeeds)});
  }

  // Threaded actor runtime: genuine interleavings.
  for (const NamedPolicy& policy : StandardPolicies()) {
    const int kRuns = 3;
    int passes = 0;
    std::int64_t messages = 0;
    for (int run = 0; run < kRuns; ++run) {
      ActorRuntime rt(tree, policy.factory);
      rt.Start();
      const RequestSequence sigma =
          MakeWorkload("mixed50", tree, kLen, 99 + static_cast<std::uint64_t>(run));
      for (const Request& r : sigma) {
        if (r.op == ReqType::kCombine) {
          rt.InjectCombine(r.node);
        } else {
          rt.InjectWrite(r.node, r.arg);
        }
      }
      rt.DrainAndStop();
      messages += rt.MessagesSent();
      const CheckResult r = CheckCausalConsistency(
          rt.history(), rt.GhostStates(), SumOp(), tree.size());
      if (r.ok && rt.history().AllCompleted()) {
        ++passes;
      } else {
        std::cout << "FAIL (" << policy.name << ", threaded run " << run
                  << "): " << r.message << "\n";
      }
    }
    ok &= (passes == kRuns);
    table.AddRow({policy.name, "threads", std::to_string(kRuns),
                  std::to_string(kLen), std::to_string(messages),
                  std::to_string(passes) + "/" + std::to_string(kRuns)});
  }

  std::cout << table.ToString();
  std::cout << (ok ? "\nEvery concurrent execution was causally consistent "
                     "(Theorem 4).\n"
                   : "\nCAUSAL CONSISTENCY VIOLATED!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
