// Policy playoff — RWW against heuristic baselines.
//
// Beyond the paper: how does the theory-backed RWW compare with policies a
// practitioner might reach for — time-based leases (Gray & Cheriton-style,
// the paper's related work [13]), an adaptive EWMA read/write-rate
// heuristic, and a randomized breaker? Every policy runs on the identical
// mechanism, so differences are purely the policy's decisions. RWW is
// expected to be at or near the best on every workload, and it is the only
// one with a worst-case guarantee.
#include <iostream>
#include <limits>

#include "analysis/competitive.h"
#include "analysis/table.h"
#include "core/extra_policies.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Policy playoff (cost ratio vs offline lease-based optimum; "
               "lower is better)\n\n";
  Tree tree = MakeKary(32, 2);
  const std::vector<std::string> workloads = {
      "mixed25", "mixed50", "mixed75", "bursty", "hotspot", "readheavy",
      "writeheavy"};
  std::vector<NamedPolicy> contestants = {
      {"RWW", RwwFactory()},
      {"timer(8)", TimerLeaseFactory(8)},
      {"timer(32)", TimerLeaseFactory(32)},
      {"prob(0.3)", ProbabilisticFactory(0.3, 5)},
      {"ewma", EwmaFactory()},
      {"push-all", PushAllFactory()},
      {"pull-all", PullAllFactory()},
  };

  std::vector<std::string> headers = {"policy"};
  headers.insert(headers.end(), workloads.begin(), workloads.end());
  headers.push_back("worst");
  TextTable table(headers);

  double rww_worst = 0;
  bool all_consistent = true;
  for (const NamedPolicy& policy : contestants) {
    std::vector<std::string> row = {policy.name};
    double worst = 0;
    for (const std::string& wl : workloads) {
      const RequestSequence sigma = MakeWorkload(wl, tree, 3000, 31);
      const CompetitiveReport report =
          RunCompetitive(tree, policy.factory, policy.name, sigma);
      all_consistent &= report.strict_ok;
      const double ratio = report.RatioVsLeaseOpt();
      worst = std::max(worst, ratio);
      row.push_back(Fmt(ratio, 2));
    }
    row.push_back(Fmt(worst, 2));
    table.AddRow(row);
    if (policy.name == "RWW") rww_worst = worst;
  }
  std::cout << table.ToString();
  std::cout << "\nall policies strictly consistent: "
            << (all_consistent ? "yes" : "NO") << "\n";
  const bool ok = all_consistent && rww_worst <= 2.5 + 1e-12;
  std::cout << "RWW worst-case ratio " << Fmt(rww_worst, 3)
            << " (guaranteed <= 2.5; heuristics carry no such bound)\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
