// E-extra — Theorem 4 by exhaustive model checking.
//
// The randomized concurrent benches sample interleavings; this bench
// COVERS them. For a battery of small configurations (trees up to 4
// nodes, request lists up to 5 requests, every policy), it enumerates
// every execution the paper's model allows — all interleavings of
// initiations and FIFO deliveries — and checks causal consistency on each.
// A reachable Theorem 4 violation in these configurations cannot hide.
#include <iostream>

#include "analysis/table.h"
#include "core/extra_policies.h"
#include "sim/explorer.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Exhaustive interleaving exploration (Theorem 4 model "
               "checking)\n\n";
  struct Config {
    std::string name;
    Tree tree;
    RequestSequence requests;
  };
  std::vector<Config> configs;
  configs.push_back({"2-node W/C race", Tree({0, 0}),
                     {Request::Write(0, 1), Request::Combine(1),
                      Request::Write(0, 2)}});
  configs.push_back({"2-node duel", Tree({0, 0}),
                     {Request::Combine(0), Request::Write(1, 1),
                      Request::Combine(1), Request::Write(0, 2)}});
  configs.push_back({"3-path crossfire", MakePath(3),
                     {Request::Combine(0), Request::Write(2, 1),
                      Request::Combine(2), Request::Write(0, 2)}});
  configs.push_back({"3-star fan", MakeStar(3),
                     {Request::Combine(1), Request::Write(2, 1),
                      Request::Combine(2), Request::Write(1, 2)}});
  configs.push_back({"4-path double write", MakePath(4),
                     {Request::Combine(3), Request::Write(0, 1),
                      Request::Write(0, 2), Request::Combine(0)}});

  TextTable table({"configuration", "policy", "executions", "max depth",
                   "consistent"});
  bool ok = true;
  std::int64_t total_executions = 0;
  for (const Config& config : configs) {
    for (const NamedPolicy& policy : AllPolicies()) {
      const ExplorationResult r = ExploreAllInterleavings(
          config.tree, policy.factory, config.requests, SumOp(), 150000);
      // Truncation is reported (never silent) but only inconsistency
      // fails: a truncated run still certified every execution it covered.
      ok &= r.all_consistent;
      total_executions += r.executions;
      table.AddRow({config.name, policy.name, std::to_string(r.executions),
                    std::to_string(r.max_depth),
                    r.all_consistent
                        ? (r.truncated ? "yes (exhausted cap)" : "yes, all")
                        : "NO: " + r.first_violation});
    }
  }
  std::cout << table.ToString();
  std::cout << "\ntotal executions checked: " << total_executions << "\n";
  std::cout << (ok ? "Every reachable interleaving of every configuration "
                     "is causally consistent.\n"
                   : "VIOLATION FOUND!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
