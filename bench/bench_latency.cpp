// E-extra — read latency across the strategy spectrum (Section 1 claims).
//
// The paper motivates adaptive aggregation by the latency/bandwidth trade:
// MDS-2 (pull-all) "suffers from unnecessary latency ... on read-dominated
// workloads" because every combine must gather the whole tree, while
// Astrolabe (push-all) answers reads locally at the price of write floods.
// The concurrent simulator measures combine latency in simulated ticks
// (per-hop delay = 1): pull-all reads pay ~2x tree depth, push-all and
// leased RWW reads are near-instant.
#include <iostream>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "core/policies.h"
#include "sim/concurrent.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Combine latency (simulated ticks; per-hop delay 1) and "
               "message cost,\nby policy and workload — 63-node binary tree "
               "(depth 5)\n\n";
  Tree tree = MakeKary(63, 2);
  TextTable table({"workload", "policy", "messages", "lat p50", "lat p90",
                   "lat max"});
  bool ok = true;
  double pull_p50 = 0, rww_p50 = 0;
  for (const std::string wl : {"readheavy", "mixed50", "writeheavy"}) {
    for (const NamedPolicy& policy :
         {NamedPolicy{"RWW", RwwFactory()},
          NamedPolicy{"push-all", PushAllFactory()},
          NamedPolicy{"pull-all", PullAllFactory()}}) {
      ConcurrentSimulator::Options options;
      options.min_delay = 1;
      options.max_delay = 1;
      options.ghost_logging = false;
      options.seed = 17;
      ConcurrentSimulator sim(tree, policy.factory, options);
      const RequestSequence sigma = MakeWorkload(wl, tree, 2000, 23);
      // Space the requests out so latency reflects protocol round-trips,
      // not queueing behind other requests.
      std::vector<ScheduledRequest> schedule;
      std::int64_t time = 0;
      for (const Request& r : sigma) {
        schedule.push_back({time, r});
        time += 40;
      }
      sim.Run(schedule);
      ok &= sim.history().AllCompleted();
      const LatencyReport latency = LatencyFromHistory(sim.history());
      table.AddRow({wl, policy.name,
                    std::to_string(sim.trace().TotalMessages()),
                    Fmt(latency.combine_latency.p50, 1),
                    Fmt(latency.combine_latency.p90, 1),
                    Fmt(latency.combine_latency.max, 1)});
      if (wl == "readheavy" && policy.name == "pull-all") {
        pull_p50 = latency.combine_latency.p50;
      }
      if (wl == "readheavy" && policy.name == "RWW") {
        rww_p50 = latency.combine_latency.p50;
      }
    }
  }
  std::cout << table.ToString();
  // The paper's qualitative claim: on read-dominated workloads the
  // pull-everything strategy pays round-trip latency on (nearly) every
  // read; the adaptive strategy answers most reads locally.
  ok &= pull_p50 >= 4.0 && rww_p50 <= 1.0;
  std::cout << "\nread-heavy median latency: pull-all " << Fmt(pull_p50, 1)
            << " ticks vs RWW " << Fmt(rww_p50, 1) << " ticks\n";
  std::cout << (ok ? "Section 1's latency claim reproduced.\n"
                   : "UNEXPECTED latency profile!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
