// E2 — Figure 3 / Corollary 4.1: RWW is a (1, 2)-algorithm.
//
// Tracks F_RWW(u, v) (the per-edge configuration: 0 unleased, 2 after a
// combine, decremented per write) through a scripted sigma(u, v) and
// verifies that the protocol's actual lease state matches Lemma 4.4:
// u.granted[v] holds iff F_RWW(u, v) > 0 — across several tree shapes,
// with the scripted edge embedded in larger topologies.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"

namespace treeagg {
namespace {

int Run() {
  std::cout << "Figure 3 / Corollary 4.1 — RWW sets the lease after 1 "
               "combine,\nbreaks it after 2 consecutive writes.\n\n";

  bool ok = true;

  // Scripted request pattern over sigma(u, v); expected F_RWW after each.
  const std::string script = "RWRWWRRWWW";
  const std::vector<int> expected = {2, 1, 2, 1, 0, 2, 2, 1, 0, 0};

  struct Scenario {
    std::string name;
    Tree tree;
    NodeId writer;  // node in subtree(u, v)
    NodeId reader;  // node in subtree(v, u)
    NodeId u, v;    // the observed ordered pair
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"2-node edge", Tree({0, 0}), 0, 1, 0, 1});
  scenarios.push_back({"middle of a path", MakePath(6), 0, 5, 2, 3});
  scenarios.push_back({"star hub edge", MakeStar(6), 2, 1, 0, 1});
  scenarios.push_back(
      {"deep kary edge", MakeKary(15, 2), 7, 12, 3, 1});

  for (const Scenario& sc : scenarios) {
    AggregationSystem sys(sc.tree, RwwFactory());
    TextTable table({"request", "F_RWW expected", "u.granted[v]", "match"});
    for (std::size_t i = 0; i < script.size(); ++i) {
      if (script[i] == 'R') {
        sys.Combine(sc.reader);
      } else {
        sys.Write(sc.writer, static_cast<Real>(i));
      }
      const bool granted = sys.node(sc.u).granted(sc.v);
      const bool match = granted == (expected[i] > 0);
      ok &= match;
      table.AddRow({std::string(1, script[i]), std::to_string(expected[i]),
                    granted ? "true" : "false", match ? "yes" : "NO"});
    }
    std::cout << "scenario: " << sc.name << ", pair (" << sc.u << ", "
              << sc.v << ")\n"
              << table.ToString() << "\n";
  }

  std::cout << (ok ? "RWW behaves as the (1,2)-algorithm everywhere.\n"
                   : "VIOLATION of the (1,2) characterization!\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main() { return treeagg::Run(); }
