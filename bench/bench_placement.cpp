// E80 — traffic-informed placement vs the static baselines.
//
// Four rows on one skewed (hotspot) workload over a 255-node kary2 tree
// hosted by 4 daemons:
//
//   * `rr`       — round-robin striping, the placement-oblivious baseline.
//   * `subtree`  — static DFS-contiguous blocks (the best placement one
//                  can pick without looking at traffic).
//   * `traffic`  — the rr run's harvested per-edge traffic fed through
//                  place::OptimizePlacement, applied to a FRESH cluster
//                  via Options.assignment — the offline re-placement loop
//                  an operator runs with `treeagg_cli place`.
//   * `live`     — starts on rr and calls Rebalance mid-run (the online
//                  path: harvest, optimize, migrate over wire v6).
//
// The headline metric is trace-scored cross-daemon messages: the rr run's
// harvested per-edge traffic (the trace an operator would feed the
// optimizer) priced under each placement with place::CrossWeight. Scoring
// every placement against the one shared trace keeps the comparison
// deterministic; each run's own harvest is reported alongside ("run
// cross") but not gated, because pipelined message counts are
// timing-bimodal — a slow interleaving defeats absorption and inflates
// traffic on whichever edges got unlucky (see bench_net_throughput).
// Exits non-zero unless the traffic-informed placement at least halves
// rr's trace cost, beats static subtree, the live re-placement moves
// nodes to a cheaper placement, and every run passes the causal checker.
//
// With --out FILE, writes the treeagg-bench-place-v1 JSON committed as
// BENCH_place.json at the repo root (tools/check_bench.py gates it).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/table.h"
#include "consistency/causal_checker.h"
#include "core/aggregate_op.h"
#include "net/cluster.h"
#include "net/local_cluster.h"
#include "place/placement.h"
#include "tree/generators.h"
#include "workload/generators.h"

namespace treeagg {
namespace {

std::vector<NodeId> ParentVector(const Tree& tree) {
  std::vector<NodeId> parent(tree.size());
  for (NodeId u = 0; u < tree.size(); ++u) {
    parent[u] = u == 0 ? 0 : tree.RootedParent(u);
  }
  return parent;
}

struct BenchConfig {
  NodeId nodes = 255;
  int daemons = 4;
  std::size_t requests = 3000;
  std::uint64_t seed = 29;
  std::string workload = "hotspot";
  // Pipelined message counts are timing-bimodal (see bench_net_throughput:
  // a slow interleaving defeats node-level absorption and inflates wire
  // traffic), so every row reports the median-by-cross-messages of `reps`
  // runs.
  int reps = 3;
  std::string out_path;
};

struct BenchRow {
  std::string name;                  // stable series key for check_bench.py
  std::uint64_t cross_messages = 0;  // rr trace priced under this placement
  std::uint64_t run_cross_messages = 0;  // own harvest (informational)
  int cross_edges = 0;
  std::uint64_t total_messages = 0;
  double requests_per_sec = 0;
  std::size_t nodes_moved = 0;  // live row only
  bool causal_ok = false;
};

BenchRow ScoreRun(const std::string& name, const std::vector<NodeId>& parent,
                  const NetRunResult& result, const std::vector<int>& placed,
                  NodeId n) {
  BenchRow row;
  row.name = name;
  row.run_cross_messages = place::CrossWeight(parent, result.traffic, placed);
  row.cross_edges = place::CrossEdges(parent, placed);
  row.total_messages = result.total_messages;
  row.requests_per_sec = result.requests_per_sec;
  row.nodes_moved = result.nodes_moved;
  const CheckResult causal =
      CheckCausalConsistency(result.history, result.ghosts, OpByName("sum"), n);
  row.causal_ok = causal.ok && result.history.AllCompleted();
  if (!causal.ok) {
    std::cout << name << " causal violation: " << causal.message << "\n";
  }
  return row;
}

void WriteJson(std::ostream& out, const BenchConfig& cfg,
               const std::vector<BenchRow>& rows) {
  out << "{\n  \"schema\": \"treeagg-bench-place-v1\",\n";
  out << "  \"workload\": \"" << cfg.workload << "\", \"nodes\": " << cfg.nodes
      << ", \"daemons\": " << cfg.daemons
      << ", \"requests\": " << cfg.requests << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"cross_messages\": " << r.cross_messages
        << ", \"run_cross_messages\": " << r.run_cross_messages
        << ", \"cross_edges\": " << r.cross_edges
        << ", \"total_messages\": " << r.total_messages
        << ", \"requests_per_sec\": " << r.requests_per_sec
        << ", \"nodes_moved\": " << r.nodes_moved
        << ", \"causal_ok\": " << (r.causal_ok ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int Run(const BenchConfig& cfg) {
  const Tree tree = MakeKary(cfg.nodes, 2);
  const std::vector<NodeId> parent = ParentVector(tree);
  const RequestSequence sigma =
      MakeWorkload(cfg.workload, tree, cfg.requests, cfg.seed);

  std::cout << "Placement bench — " << cfg.nodes << "-node kary2 tree, "
            << cfg.daemons << " daemons, pipelined " << cfg.workload
            << " workload of " << sigma.size() << " requests\n\n";

  std::vector<BenchRow> rows;
  // Median rep by own-harvest cross messages; the matching NetRunResult is
  // returned so the rr phase can publish its traffic as the shared trace.
  const std::vector<std::uint64_t>* trace = nullptr;
  const auto run_static = [&](const std::string& name,
                              const std::vector<int>& placed) {
    std::vector<std::pair<BenchRow, NetRunResult>> reps;
    for (int rep = 0; rep < std::max(1, cfg.reps); ++rep) {
      LocalCluster::Options options;
      options.daemons = cfg.daemons;
      options.assignment = placed;
      options.ghost_logging = true;
      NetRunResult result =
          RunNetWorkload(parent, sigma, options, /*sequential=*/false);
      BenchRow row = ScoreRun(name, parent, result, placed, tree.size());
      reps.emplace_back(std::move(row), std::move(result));
    }
    std::sort(reps.begin(), reps.end(), [](const auto& a, const auto& b) {
      return a.first.run_cross_messages < b.first.run_cross_messages;
    });
    auto& median = reps[reps.size() / 2];
    // A causal violation in ANY rep fails the bench regardless of which
    // rep the median picks.
    for (const auto& [row, result] : reps) {
      median.first.causal_ok &= row.causal_ok;
    }
    if (trace != nullptr) {
      median.first.cross_messages = place::CrossWeight(parent, *trace, placed);
    }
    rows.push_back(median.first);
    return std::move(median.second);
  };

  // Phase 1: the oblivious baseline, whose harvested traffic becomes the
  // shared scoring trace and seeds the optimizer.
  const std::vector<int> rr = AssignNodes(parent, cfg.daemons, "rr");
  const NetRunResult rr_result = run_static("rr", rr);
  trace = &rr_result.traffic;
  rows[0].cross_messages = place::CrossWeight(parent, *trace, rr);

  // Phase 2: the traffic-blind tree-aware baseline.
  (void)run_static("subtree", AssignNodes(parent, cfg.daemons, "subtree"));

  // Phase 3: optimize against what the rr run actually measured, then run
  // the same workload under the optimized map.
  const place::PlacementPlan plan =
      place::OptimizePlacement(parent, *trace, cfg.daemons);
  (void)run_static("traffic", plan.node_daemon);

  // Phase 4: the online path — start on rr, rebalance after a quarter of
  // the workload has been served.
  {
    LocalCluster::Options options;
    options.daemons = cfg.daemons;
    options.placement = "rr";
    options.ghost_logging = true;
    const NetRunResult result =
        RunNetWorkload(parent, sigma, options, /*sequential=*/false,
                       ProbeVia::kMechanism,
                       /*replace_after=*/sigma.size() / 4);
    BenchRow row = ScoreRun("live", parent, result, rr, tree.size());
    // The run straddled two placements, so CrossWeight against either map
    // misprices it; report the driver's harvest-time score of the
    // placement the tail ran under.
    row.cross_messages = result.cross_weight_after;
    row.run_cross_messages = result.cross_weight_after;
    row.cross_edges = -1;  // mixed placements over the run, not meaningful
    std::cout << "live re-placement: " << result.nodes_moved
              << " nodes moved, harvest-time cross weight "
              << result.cross_weight_before << " -> "
              << result.cross_weight_after << "\n";
    row.causal_ok &= result.nodes_moved > 0 &&
                     result.cross_weight_after < result.cross_weight_before;
    rows.push_back(row);
  }

  TextTable table(
      {"placement", "trace cross", "run cross", "cross edges", "total msgs",
       "req/s", "causal"});
  for (const BenchRow& r : rows) {
    table.AddRow({r.name, std::to_string(r.cross_messages),
                  std::to_string(r.run_cross_messages),
                  std::to_string(r.cross_edges),
                  std::to_string(r.total_messages),
                  Fmt(r.requests_per_sec, 0), r.causal_ok ? "ok" : "FAIL"});
  }
  std::cout << "\n" << table.ToString();

  bool ok = true;
  for (const BenchRow& r : rows) ok &= r.causal_ok;
  const BenchRow& rr_row = rows[0];
  const BenchRow& subtree_row = rows[1];
  const BenchRow& traffic_row = rows[2];
  if (traffic_row.cross_messages * 2 > rr_row.cross_messages) {
    std::cout << "FAIL: traffic placement (" << traffic_row.cross_messages
              << ") did not halve rr's trace cost (" << rr_row.cross_messages
              << ")\n";
    ok = false;
  }
  if (traffic_row.cross_messages >= subtree_row.cross_messages) {
    std::cout << "FAIL: traffic placement (" << traffic_row.cross_messages
              << ") did not beat static subtree ("
              << subtree_row.cross_messages << ")\n";
    ok = false;
  }

  if (!cfg.out_path.empty()) {
    std::ofstream out(cfg.out_path);
    if (!out) {
      std::cerr << "cannot open " << cfg.out_path << "\n";
      return 1;
    }
    WriteJson(out, cfg, rows);
    std::cout << "\nwrote " << cfg.out_path << "\n";
  }

  std::cout << (ok ? "\nPASS: traffic-informed placement wins and every run "
                     "is causally consistent\n"
                   : "\nFAIL\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace treeagg

int main(int argc, char** argv) {
  treeagg::BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--out" && (value = next())) {
      cfg.out_path = value;
    } else if (arg == "--nodes" && (value = next())) {
      cfg.nodes = static_cast<treeagg::NodeId>(std::stol(value));
    } else if (arg == "--daemons" && (value = next())) {
      cfg.daemons = static_cast<int>(std::stol(value));
    } else if (arg == "--requests" && (value = next())) {
      cfg.requests = static_cast<std::size_t>(std::stoul(value));
    } else if (arg == "--seed" && (value = next())) {
      cfg.seed = static_cast<std::uint64_t>(std::stoull(value));
    } else if (arg == "--workload" && (value = next())) {
      cfg.workload = value;
    } else if (arg == "--reps" && (value = next())) {
      cfg.reps = static_cast<int>(std::stol(value));
    } else {
      std::cerr << "usage: bench_placement [--out FILE] [--nodes N]"
                   " [--daemons D] [--requests R] [--seed S]"
                   " [--workload W] [--reps R]\n";
      return 2;
    }
  }
  return treeagg::Run(cfg);
}
