// Concurrent execution audit (Section 5 / Theorem 4): runs the same
// workload through (a) the deterministic concurrent simulator with random
// message delays and (b) the multi-threaded actor runtime, then verifies
// causal consistency of both histories with the Section 5.3 checker.
#include <iostream>

#include "consistency/causal_checker.h"
#include "core/policies.h"
#include "runtime/actor_runtime.h"
#include "sim/concurrent.h"
#include "tree/generators.h"
#include "workload/generators.h"

int main() {
  using namespace treeagg;

  Tree tree = MakeKary(15, 2);
  const RequestSequence sigma = MakeWorkload("mixed50", tree, 600, 42);
  std::cout << "Workload: 600 mixed requests on " << tree.Describe()
            << "\n\n";

  {
    ConcurrentSimulator::Options options;
    options.min_delay = 1;
    options.max_delay = 25;
    options.seed = 7;
    ConcurrentSimulator sim(tree, RwwFactory(), options);
    Rng rng(3);
    sim.Run(ScheduleWithGaps(sigma, 4, rng));
    const CheckResult r = CheckCausalConsistency(
        sim.history(), sim.GhostStates(), SumOp(), tree.size());
    std::cout << "discrete-event simulator: "
              << sim.trace().TotalMessages() << " messages, causal check "
              << (r.ok ? "PASS" : "FAIL: " + r.message) << "\n";
    if (!r.ok) return 1;
  }

  {
    ActorRuntime rt(tree, RwwFactory());
    rt.Start();
    for (const Request& r : sigma) {
      if (r.op == ReqType::kCombine) {
        rt.InjectCombine(r.node);
      } else {
        rt.InjectWrite(r.node, r.arg);
      }
    }
    rt.DrainAndStop();
    const CheckResult r = CheckCausalConsistency(
        rt.history(), rt.GhostStates(), SumOp(), tree.size());
    std::cout << "threaded actor runtime:   " << rt.MessagesSent()
              << " messages, causal check "
              << (r.ok ? "PASS" : "FAIL: " + r.message) << "\n";
    if (!r.ok) return 1;
  }

  std::cout << "\nBoth executions are causally consistent, as Theorem 4\n"
               "guarantees for any lease-based algorithm.\n";
  return 0;
}
