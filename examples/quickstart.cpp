// Quickstart: build an aggregation tree, run the RWW lease-based algorithm
// on a handful of requests, and inspect the message costs.
//
//   $ ./quickstart
#include <iostream>

#include "analysis/sequence_diagram.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"

int main() {
  using namespace treeagg;

  // A balanced binary tree of 15 nodes, aggregating with +.
  Tree tree = MakeKary(15, 2);
  std::cout << "Topology: " << tree.Describe() << "\n\n";

  AggregationSystem::Options options;
  options.keep_message_log = true;  // so we can render a diagram below
  AggregationSystem sys(tree, RwwFactory(), options);

  // Writes update a node's local value; no messages flow until someone
  // reads (there are no leases yet).
  sys.Write(/*node=*/7, 10.0);
  sys.Write(/*node=*/14, 32.0);
  std::cout << "after 2 writes:        " << sys.trace().TotalMessages()
            << " messages\n";

  // The first combine pulls the whole tree once and installs leases along
  // the way (RWW grants on every response).
  const Real total = sys.Combine(/*node=*/0);
  std::cout << "combine@0 = " << total << "  ("
            << sys.trace().TotalMessages() << " messages so far)\n";

  // Re-reading is free: every lease is in place.
  sys.Combine(0);
  std::cout << "combine@0 again:       " << sys.trace().TotalMessages()
            << " messages (unchanged)\n";

  // A write now propagates updates along the lease graph...
  sys.Write(7, 11.0);
  std::cout << "write@7 under leases:  " << sys.trace().TotalMessages()
            << " messages\n";

  // ...and a second consecutive write breaks the leases (RWW = break after
  // two writes), so further writes go quiet again.
  sys.Write(7, 12.0);
  sys.Write(7, 13.0);
  std::cout << "two more writes@7:     " << sys.trace().TotalMessages()
            << " messages\n";

  const Real after = sys.Combine(3);
  std::cout << "combine@3 = " << after << " (strictly consistent)\n";

  std::cout << "\nmessage breakdown: probes=" << sys.trace().totals().probes
            << " responses=" << sys.trace().totals().responses
            << " updates=" << sys.trace().totals().updates
            << " releases=" << sys.trace().totals().releases << "\n";

  // A smaller run, drawn as a sequence diagram: a combine at the end of a
  // 4-node path, then a write at the other end (updates ride the leases),
  // then a second write (updates + the cascading releases).
  std::cout << "\n--- message sequence on a 4-node path ---\n";
  Tree path = MakePath(4);
  AggregationSystem::Options demo_options;
  demo_options.keep_message_log = true;
  AggregationSystem demo(path, RwwFactory(), demo_options);
  demo.Combine(3);
  demo.Write(0, 1.0);
  demo.Write(0, 2.0);
  std::cout << RenderSequenceDiagram(demo.trace().log(), path.size());
  return 0;
}
