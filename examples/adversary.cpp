// Theorem 3's adversary, live: on a two-node tree, ADV(a, b) issues `a`
// combines at the reader then `b` writes at the writer, repeatedly. For
// RWW = (1, 2) the measured cost ratio against the offline optimum
// converges to exactly 5/2 — and no other (a, b) does better.
#include <iostream>

#include "analysis/table.h"
#include "core/policies.h"
#include "offline/edge_dp.h"
#include "offline/projection.h"
#include "sim/system.h"
#include "workload/generators.h"

int main() {
  using namespace treeagg;

  Tree tree({0, 0});  // two nodes: writer 0, reader 1
  const std::size_t periods = 500;

  std::cout << "ADV(a,b): a combines at node 1, then b writes at node 0, x"
            << periods << "\n\n";

  TextTable table(
      {"algorithm", "adversary", "alg cost", "OPT cost", "ratio"});
  for (int a = 1; a <= 3; ++a) {
    for (int b = 1; b <= 4; ++b) {
      // The adversary tailored to (a, b) — Theorem 3's request generator.
      const RequestSequence sigma = MakeAdversarial(1, 0, a, b, periods);
      AggregationSystem sys(tree, AbFactory(a, b));
      sys.Execute(sigma);
      const EdgeSequence projected = ProjectSequence(sigma, tree, 0, 1);
      const std::int64_t opt = OptimalEdgeCost(projected);
      const std::int64_t alg = sys.trace().TotalMessages();
      table.AddRow({"lease(" + std::to_string(a) + "," + std::to_string(b) +
                        ")",
                    "ADV(" + std::to_string(a) + "," + std::to_string(b) +
                        ")",
                    std::to_string(alg), std::to_string(opt),
                    Fmt(static_cast<double>(alg) / static_cast<double>(opt),
                        3)});
    }
  }
  std::cout << table.ToString();
  std::cout << "\nRWW = lease(1,2) achieves the minimum possible ratio 5/2\n"
               "over the (a,b) class; every other choice fares worse on its\n"
               "own adversary (Theorem 3).\n";
  return 0;
}
