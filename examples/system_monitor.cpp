// System-management scenario (the Astrolabe / Ganglia motivation from the
// paper's introduction): a cluster arranged as an aggregation hierarchy,
// where operators watch two aggregates — total load (sum) and "any node
// unhealthy?" (boolean or) — while nodes' load values churn in phases:
// quiet periods (rare writes, frequent dashboard reads) alternate with
// incident periods (write storms at a hot subtree).
//
// The demo shows RWW adapting per phase: during quiet periods the lease
// graph converges toward push-all (reads become local); during incidents
// the hot subtree's leases break and updates stop flooding.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "common/rng.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"

namespace {

using namespace treeagg;

struct PhaseResult {
  std::string phase;
  std::int64_t messages;
  int min_leases;  // fewest load-system leases held at any point in phase
  int end_leases;  // leases held after the phase's final dashboard read
};

}  // namespace

int main() {
  Tree tree = MakeKary(40, 3);  // 40 machines in a 3-ary hierarchy
  std::cout << "Cluster: " << tree.Describe()
            << "; dashboards read at the root (node 0)\n\n";

  // Two aggregation systems over the same tree: SUM of load, OR of alarms.
  AggregationSystem::Options or_options;
  or_options.op = &BoolOrOp();
  AggregationSystem load(tree, RwwFactory());
  AggregationSystem alarms(tree, RwwFactory(), or_options);

  Rng rng(11);
  std::vector<PhaseResult> results;
  const auto run_phase = [&](const std::string& name, double write_rate,
                             NodeId hot_lo, NodeId hot_hi, int ticks) {
    const std::int64_t before =
        load.trace().TotalMessages() + alarms.trace().TotalMessages();
    const auto lease_count = [&] {
      int leases = 0;
      for (const Edge& e : tree.OrderedEdges()) {
        if (load.node(e.u).granted(e.v)) ++leases;
      }
      return leases;
    };
    int min_leases = lease_count();
    for (int t = 0; t < ticks; ++t) {
      for (NodeId u = hot_lo; u <= hot_hi; ++u) {
        if (rng.NextBool(write_rate)) {
          load.Write(u, 100.0 * rng.NextDouble());
          alarms.Write(u, rng.NextBool(0.05) ? 1.0 : 0.0);
        }
      }
      // Writes may have shed leases; sample before the dashboard re-grows
      // them with its reads.
      min_leases = std::min(min_leases, lease_count());
      load.Combine(0);
      alarms.Combine(0);
    }
    results.push_back(
        {name,
         load.trace().TotalMessages() + alarms.trace().TotalMessages() -
             before,
         min_leases, lease_count()});
  };

  run_phase("quiet (rare writes everywhere)", 0.01, 0, 39, 50);
  run_phase("incident (write storm, nodes 27..39)", 0.9, 27, 39, 50);
  run_phase("recovery (quiet again)", 0.01, 0, 39, 50);

  TextTable table({"phase", "messages", "min leases", "leases after read"});
  for (const PhaseResult& r : results) {
    table.AddRow({r.phase, std::to_string(r.messages),
                  std::to_string(r.min_leases),
                  std::to_string(r.end_leases)});
  }
  std::cout << table.ToString();
  std::cout << "\ncurrent total load: " << load.Combine(0)
            << ", any alarm: " << (alarms.Combine(0) != 0 ? "yes" : "no")
            << "\n";
  std::cout << "\nDuring the incident RWW sheds the hot subtree's leases\n"
               "(write storms stop flooding updates); in quiet phases the\n"
               "lease graph regrows and dashboard reads become local.\n";
  return 0;
}
