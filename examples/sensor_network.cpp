// Sensor-network scenario (the TAG / sensor-aggregation motivation from the
// paper's introduction): a random tree of sensors, each periodically
// writing a temperature reading, with a monitoring station reading the
// maximum and the sum. Compares RWW against the static strategies.
#include <cstdint>
#include <iostream>

#include "analysis/table.h"
#include "common/rng.h"
#include "core/policies.h"
#include "sim/system.h"
#include "tree/generators.h"
#include "workload/request.h"

namespace {

using namespace treeagg;

// Sensors write with probability `write_rate` each tick; the station at
// node 0 reads every tick.
RequestSequence SensorWorkload(const Tree& tree, int ticks, double write_rate,
                               Rng& rng) {
  RequestSequence sigma;
  for (int tick = 0; tick < ticks; ++tick) {
    for (NodeId sensor = 1; sensor < tree.size(); ++sensor) {
      if (rng.NextBool(write_rate)) {
        const Real reading = 15.0 + 10.0 * rng.NextDouble();
        sigma.push_back(Request::Write(sensor, reading));
      }
    }
    sigma.push_back(Request::Combine(0));
  }
  return sigma;
}

}  // namespace

int main() {
  Rng topo_rng(2024);
  Tree tree = MakeRandomTree(64, topo_rng);
  std::cout << "Sensor field: " << tree.Describe() << "\n";
  std::cout << "Station at node 0 reads max temperature every tick.\n\n";

  TextTable table({"write rate", "policy", "messages", "per tick"});
  const int ticks = 200;
  for (const double rate : {0.02, 0.2, 0.8}) {
    for (const NamedPolicy& policy :
         {NamedPolicy{"RWW", RwwFactory()},
          NamedPolicy{"push-all", PushAllFactory()},
          NamedPolicy{"pull-all", PullAllFactory()}}) {
      Rng rng(7);
      const RequestSequence sigma = SensorWorkload(tree, ticks, rate, rng);
      AggregationSystem::Options options;
      options.op = &MaxOp();
      AggregationSystem sys(tree, policy.factory, options);
      sys.Execute(sigma);
      table.AddRow({Fmt(rate, 2), policy.name,
                    std::to_string(sys.trace().TotalMessages()),
                    Fmt(static_cast<double>(sys.trace().TotalMessages()) /
                            ticks,
                        1)});
    }
  }
  std::cout << table.ToString();
  std::cout << "\nRWW adapts: near pull-all on write-heavy fields, near\n"
               "push-all on read-heavy ones, never the worst of either.\n";
  return 0;
}
